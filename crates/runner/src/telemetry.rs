//! Live sweep telemetry.
//!
//! Workers publish [`SweepEvent`]s over an [`std::sync::mpsc`] channel as
//! scenarios start and finish; a renderer thread turns them into progress
//! lines on stderr (stdout stays reserved for the figure tables, which
//! must be bit-identical across `--jobs` settings). Notes — one-shot
//! warnings like a failed cache write or CSV export — ride the same
//! channel so they are surfaced exactly once instead of once per row.

use std::io::Write;
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// One telemetry event from a sweep worker.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// A scenario began executing (or probing the cache).
    Started {
        /// Index in the sweep plan.
        index: usize,
        /// Scenario display label.
        label: String,
    },
    /// A scenario finished.
    Finished {
        /// Index in the sweep plan.
        index: usize,
        /// Scenario display label.
        label: String,
        /// Wall time spent on this scenario (near zero for cache hits).
        wall: Duration,
        /// Whether the result came from the cache.
        cache_hit: bool,
        /// Simulator events replayed per wall-clock second (0 for hits).
        events_per_sec: f64,
    },
    /// A scenario's worker panicked; only that scenario is lost.
    Failed {
        /// Index in the sweep plan.
        index: usize,
        /// Scenario display label.
        label: String,
        /// The panic message.
        message: String,
    },
    /// A one-shot warning (cache write failure, export error, …).
    Note(String),
}

/// Drains `events`, rendering progress lines to `out`, and returns every
/// [`SweepEvent::Note`] seen, in arrival order.
///
/// Runs until the sending side hangs up; the runner drops its sender once
/// the pool joins, which ends the loop. Rendering is plain line output —
/// no cursor tricks — so it behaves in CI logs and when piped.
// vr-analyze::blocking(reason = "the channel for-loop parks until every sender hangs up")
pub fn render_progress(
    events: Receiver<SweepEvent>,
    total: usize,
    mut out: impl Write,
) -> Vec<String> {
    let mut notes = Vec::new();
    let mut done = 0usize;
    for event in events {
        match event {
            SweepEvent::Started { .. } => {}
            SweepEvent::Finished {
                label,
                wall,
                cache_hit,
                events_per_sec,
                ..
            } => {
                done += 1;
                let source = if cache_hit {
                    "cached".to_owned()
                } else {
                    format!("{:.2}s, {:.0} ev/s", wall.as_secs_f64(), events_per_sec)
                };
                let _ = writeln!(out, "[{done}/{total}] {label} ({source})");
            }
            SweepEvent::Failed {
                index,
                label,
                message,
            } => {
                done += 1;
                let _ = writeln!(
                    out,
                    "[{done}/{total}] {label} FAILED (scenario {index}): {message}"
                );
            }
            SweepEvent::Note(note) => {
                let _ = writeln!(out, "note: {note}");
                notes.push(note);
            }
        }
    }
    notes
}

/// Drains `events` without rendering, still collecting notes. Used when
/// progress output is suppressed (`quiet` sweeps, tests).
// vr-analyze::blocking(reason = "the channel for-loop parks until every sender hangs up")
pub fn drain_progress(events: Receiver<SweepEvent>) -> Vec<String> {
    let mut notes = Vec::new();
    for event in events {
        if let SweepEvent::Note(note) = event {
            notes.push(note);
        }
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn renderer_counts_progress_and_collects_notes() {
        let (tx, rx) = channel();
        tx.send(SweepEvent::Started {
            index: 0,
            label: "a".into(),
        })
        .unwrap();
        tx.send(SweepEvent::Finished {
            index: 0,
            label: "a".into(),
            wall: Duration::from_millis(1500),
            cache_hit: false,
            events_per_sec: 1000.0,
        })
        .unwrap();
        tx.send(SweepEvent::Note("cache write failed".into()))
            .unwrap();
        tx.send(SweepEvent::Finished {
            index: 1,
            label: "b".into(),
            wall: Duration::ZERO,
            cache_hit: true,
            events_per_sec: 0.0,
        })
        .unwrap();
        tx.send(SweepEvent::Failed {
            index: 2,
            label: "c".into(),
            message: "boom".into(),
        })
        .unwrap();
        drop(tx);

        let mut buf = Vec::new();
        let notes = render_progress(rx, 3, &mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(notes, vec!["cache write failed".to_owned()]);
        assert!(text.contains("[1/3] a (1.50s, 1000 ev/s)"), "{text}");
        assert!(text.contains("note: cache write failed"), "{text}");
        assert!(text.contains("[2/3] b (cached)"), "{text}");
        assert!(text.contains("[3/3] c FAILED (scenario 2): boom"), "{text}");
    }

    #[test]
    fn drain_collects_notes_silently() {
        let (tx, rx) = channel();
        tx.send(SweepEvent::Note("only this".into())).unwrap();
        tx.send(SweepEvent::Started {
            index: 0,
            label: "x".into(),
        })
        .unwrap();
        drop(tx);
        assert_eq!(drain_progress(rx), vec!["only this".to_owned()]);
    }
}
