//! Deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue ordered by `(time, insertion sequence)`.
//! The sequence tie-break makes event ordering — and therefore every
//! simulation built on it — fully deterministic: two events scheduled for the
//! same instant fire in the order they were scheduled.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] marks the entry dead and the
//! queue skips it on pop, so cancelling is O(1) amortized and popping stays
//! O(log n) amortized. When dead entries outnumber half the live ones the
//! queue compacts, rebuilding the heap without them, so cancel-heavy
//! workloads cannot grow the heap without bound.
//!
//! ```
//! use vr_simcore::event::EventQueue;
//! use vr_simcore::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! let a = q.schedule(SimTime::from_secs(2), "second");
//! q.schedule(SimTime::from_secs(1), "first");
//! q.schedule(SimTime::from_secs(2), "third (same time, later seq)");
//! assert!(q.cancel(a));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("third (same time, later seq)"));
//! assert!(q.pop().is_none());
//! ```

use std::cmp::{Ordering, Reverse};
// vr-lint::allow(nondeterministic-collection, reason = "pending/cancelled are membership-only seq sets; nothing ever iterates them, so hash order cannot leak into event order")
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are unique for the lifetime of the queue and become inert once the
/// event has fired or been cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic time-ordered queue of pending simulation events.
///
/// See the [module documentation](self) for ordering and cancellation
/// semantics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Seqs scheduled but neither fired nor cancelled.
    // vr-lint::allow(nondeterministic-collection, reason = "queried by `contains`/`remove` only; event ordering comes from the heap's (time, seq) keys")
    pending: HashSet<u64>,
    /// Seqs cancelled but still physically present in the heap.
    // vr-lint::allow(nondeterministic-collection, reason = "queried by `contains`/`remove` only; event ordering comes from the heap's (time, seq) keys")
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            // vr-lint::allow(nondeterministic-collection, reason = "constructing the membership-only seq set documented on the struct field")
            pending: HashSet::new(),
            // vr-lint::allow(nondeterministic-collection, reason = "constructing the membership-only seq set documented on the struct field")
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time` and returns a handle that can
    /// cancel it.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Rebuilds the heap without cancelled entries once they outnumber half
    /// the live ones.
    ///
    /// The O(n) rebuild is amortized: after a compaction the dead set is
    /// empty, and since `2 · dead > live` gates the rebuild its cost is at
    /// most ~3× the number of cancels performed since the previous one.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() * 2 <= self.pending.len() {
            return;
        }
        let kept: BinaryHeap<Reverse<Entry<E>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(entry)| !self.cancelled.contains(&entry.seq))
            .collect();
        self.heap = kept;
        self.cancelled.clear();
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            // Popping shrinks the live count, so the dead ratio can cross
            // the compaction threshold here too, not just on cancel.
            self.maybe_compact();
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// The number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The number of entries physically held by the backing heap, including
    /// lazily-cancelled ones awaiting compaction.
    ///
    /// Always at least [`len`](Self::len); the compaction policy keeps the
    /// excess bounded by `len() / 2`. Exposed so external checkers can assert
    /// the queue does not grow without bound under heavy cancellation.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(2), "alive");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "alive")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(9), "alive");
        assert!(q.cancel(h));
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.pop(), Some((t(9), "alive")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_fired_handle_with_others_pending_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "fires");
        q.schedule(t(2), "still pending");
        assert_eq!(q.pop(), Some((t(1), "fires")));
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "still pending")));
    }

    #[test]
    fn heavy_cancellation_compacts_heap() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..1_000).map(|i| q.schedule(t(i), i)).collect();
        for h in &handles[..900] {
            assert!(q.cancel(*h));
        }
        assert_eq!(q.len(), 100);
        // Compaction keeps dead heap entries bounded by half the live count;
        // without it the heap would still hold all 1 000 entries.
        assert!(
            q.heap_len() - q.len() <= q.len() / 2,
            "heap holds {} entries for {} live events",
            q.heap_len(),
            q.len()
        );
        // Survivors still pop in (time, seq) order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (900..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn cancelling_everything_empties_the_heap() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..64).map(|i| q.schedule(t(i % 7), i)).collect();
        for h in handles {
            assert!(q.cancel(h));
        }
        assert!(q.is_empty());
        assert_eq!(q.heap_len(), 0, "cancelled entries must not linger");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn compaction_preserves_handle_semantics() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..10).map(|i| q.schedule(t(i), i)).collect();
        for h in &handles[..8] {
            assert!(q.cancel(*h));
        }
        // Cancelled handles stay dead after the compaction that just ran.
        for h in &handles[..8] {
            assert!(!q.cancel(*h));
        }
        // Live handles are still cancellable exactly once.
        assert!(q.cancel(handles[8]));
        assert!(!q.cancel(handles[8]));
        assert_eq!(q.pop(), Some((t(9), 9)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(10), 1);
        q.schedule(t(5), 2);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(8), 3);
        assert!(q.cancel(h1));
        q.schedule(t(12), 4);
        assert_eq!(q.pop(), Some((t(8), 3)));
        assert_eq!(q.pop(), Some((t(12), 4)));
        assert!(q.pop().is_none());
    }
}
