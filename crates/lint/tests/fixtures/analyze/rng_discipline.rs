pub fn fresh_stream(seed: u64) -> SimRng {
    SimRng::seed_from(seed)
}
