//! Lossless JSON serialization of [`RunReport`].
//!
//! The workspace's `serde` is a no-op offline stand-in (see
//! `compat/README.md`), so the experiment runner's content-addressed result
//! cache needs a hand-rolled, exactly-invertible encoding of the report.
//! This module provides it on top of [`vr_simcore::jsonio`]:
//!
//! * every field of [`RunReport`] and its nested types round-trips
//!   bit-for-bit (`decode(encode(r)) == r`, asserted via the report's
//!   `PartialEq`, which compares `f64`s exactly);
//! * encoding is deterministic (object fields are emitted in a fixed
//!   order), so equal reports produce byte-identical cache files;
//! * decoding validates structure and invariants (event-log and
//!   time-series ordering, memory-profile monotonicity) and returns an
//!   error instead of panicking on a corrupted or stale cache file.
//!
//! A [`SCHEMA_VERSION`] is embedded in every document; bumping it when the
//! report shape changes makes old cache entries decode errors (which the
//! cache treats as misses) rather than silent misreads.

use vr_cluster::job::{
    JobClass, JobId, JobSpec, JobState, MalleableSpec, MemoryProfile, RunningJob, TimeBreakdown,
};
use vr_cluster::node::{NodeCounters, NodeId};
use vr_cluster::units::Bytes;
use vr_faults::FaultCounters;
use vr_metrics::sampler::ClusterGauges;
use vr_metrics::summary::WorkloadSummary;
use vr_simcore::engine::RunStats;
use vr_simcore::jsonio::Json;
use vr_simcore::stats::Summary;
use vr_simcore::time::{SimSpan, SimTime};
use vr_simcore::TimeSeries;

use crate::events::{EventLog, SchedulerEventKind};
use crate::policy::PolicyKind;
use crate::report::{RunReport, SchedulerCounters};
use crate::reservation::ReservationStats;

/// Version tag of the encoding; bump when [`RunReport`]'s shape changes so
/// stale cache entries are rejected instead of misread.
///
/// v2: added `run_stats` (engine counters: events processed, final time,
/// drained flag) so horizon-truncated runs are detectable from the report.
///
/// v3: policy plugins — `width` on jobs, optional `malleable` spec,
/// `grows`/`shrinks` scheduler counters, and the `malleable`/`fractional`
/// policy tokens.
pub const SCHEMA_VERSION: u64 = 3;

/// Encodes a report as a compact JSON string.
pub fn encode_report(report: &RunReport) -> String {
    report_to_json(report).render()
}

/// Decodes a report from a JSON string produced by [`encode_report`].
///
/// # Errors
///
/// Returns a description of the first structural problem (bad JSON, wrong
/// schema version, missing field, violated ordering invariant).
pub fn decode_report(text: &str) -> Result<RunReport, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    report_from_json(&doc)
}

fn report_to_json(r: &RunReport) -> Json {
    Json::obj([
        ("schema", Json::U64(SCHEMA_VERSION)),
        ("trace_name", Json::str(&r.trace_name)),
        ("policy", Json::str(policy_token(r.policy))),
        ("seed", Json::U64(r.seed)),
        ("jobs", Json::Arr(r.jobs.iter().map(job_to_json).collect())),
        ("summary", summary_to_json(&r.summary)),
        ("gauges", gauges_to_json(&r.gauges)),
        ("counters", counters_to_json(&r.counters)),
        ("reservations", reservations_to_json(&r.reservations)),
        (
            "node_counters",
            Json::Arr(r.node_counters.iter().map(node_counters_to_json).collect()),
        ),
        ("events", events_to_json(&r.events)),
        ("finished_at", Json::U64(r.finished_at.as_micros())),
        ("run_stats", run_stats_to_json(&r.run_stats)),
        ("unfinished_jobs", Json::U64(r.unfinished_jobs as u64)),
        ("faults", faults_to_json(&r.faults)),
        (
            "audit_violations",
            Json::Arr(r.audit_violations.iter().map(Json::str).collect()),
        ),
    ])
}

fn report_from_json(doc: &Json) -> Result<RunReport, String> {
    let schema = u64_field(doc, "schema")?;
    if schema != SCHEMA_VERSION {
        return Err(format!(
            "report schema version {schema} != expected {SCHEMA_VERSION}"
        ));
    }
    Ok(RunReport {
        trace_name: str_field(doc, "trace_name")?.to_owned(),
        policy: policy_from_token(str_field(doc, "policy")?)?,
        seed: u64_field(doc, "seed")?,
        jobs: arr_field(doc, "jobs")?
            .iter()
            .map(job_from_json)
            .collect::<Result<_, _>>()?,
        summary: summary_from_json(field(doc, "summary")?)?,
        gauges: gauges_from_json(field(doc, "gauges")?)?,
        counters: counters_from_json(field(doc, "counters")?)?,
        reservations: reservations_from_json(field(doc, "reservations")?)?,
        node_counters: arr_field(doc, "node_counters")?
            .iter()
            .map(node_counters_from_json)
            .collect::<Result<_, _>>()?,
        events: events_from_json(field(doc, "events")?)?,
        finished_at: SimTime::from_micros(u64_field(doc, "finished_at")?),
        run_stats: run_stats_from_json(field(doc, "run_stats")?)?,
        unfinished_jobs: usize_field(doc, "unfinished_jobs")?,
        faults: faults_from_json(field(doc, "faults")?)?,
        audit_violations: arr_field(doc, "audit_violations")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "audit violation is not a string".to_owned())
            })
            .collect::<Result<_, _>>()?,
    })
}

// ---- field plumbing ------------------------------------------------------

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn u32_field(doc: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(doc, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn usize_field(doc: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(u64_field(doc, key)?).map_err(|_| format!("field {key:?} exceeds usize"))
}

fn f64_field(doc: &Json, key: &str) -> Result<f64, String> {
    field(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    field(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn arr_field<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn time_field(doc: &Json, key: &str) -> Result<SimTime, String> {
    Ok(SimTime::from_micros(u64_field(doc, key)?))
}

fn span_field(doc: &Json, key: &str) -> Result<SimSpan, String> {
    Ok(SimSpan::from_micros(u64_field(doc, key)?))
}

// ---- enums ---------------------------------------------------------------

/// Stable token for a policy (matches the CLI's `--policy` names).
fn policy_token(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::NoLoadSharing => "none",
        PolicyKind::Random => "random",
        PolicyKind::CpuOnly => "cpu",
        PolicyKind::GLoadSharing => "gls",
        PolicyKind::VReconfiguration => "vrecon",
        PolicyKind::WeightedCpuMem => "weighted",
        PolicyKind::SuspendLargest => "suspend",
        PolicyKind::Malleable => "malleable",
        PolicyKind::Fractional => "fractional",
    }
}

fn policy_from_token(token: &str) -> Result<PolicyKind, String> {
    Ok(match token {
        "none" => PolicyKind::NoLoadSharing,
        "random" => PolicyKind::Random,
        "cpu" => PolicyKind::CpuOnly,
        "gls" => PolicyKind::GLoadSharing,
        "vrecon" => PolicyKind::VReconfiguration,
        "weighted" => PolicyKind::WeightedCpuMem,
        "suspend" => PolicyKind::SuspendLargest,
        "malleable" => PolicyKind::Malleable,
        "fractional" => PolicyKind::Fractional,
        other => return Err(format!("unknown policy token {other:?}")),
    })
}

fn class_token(class: JobClass) -> &'static str {
    match class {
        JobClass::CpuIntensive => "cpu",
        JobClass::MemoryIntensive => "mem",
        JobClass::CpuMemoryIntensive => "cpu+mem",
        JobClass::IoActive => "io",
    }
}

fn class_from_token(token: &str) -> Result<JobClass, String> {
    Ok(match token {
        "cpu" => JobClass::CpuIntensive,
        "mem" => JobClass::MemoryIntensive,
        "cpu+mem" => JobClass::CpuMemoryIntensive,
        "io" => JobClass::IoActive,
        other => return Err(format!("unknown job class {other:?}")),
    })
}

fn state_token(state: JobState) -> &'static str {
    match state {
        JobState::Pending => "pending",
        JobState::Running => "running",
        JobState::Migrating => "migrating",
        JobState::Suspended => "suspended",
        JobState::Completed => "completed",
    }
}

fn state_from_token(token: &str) -> Result<JobState, String> {
    Ok(match token {
        "pending" => JobState::Pending,
        "running" => JobState::Running,
        "migrating" => JobState::Migrating,
        "suspended" => JobState::Suspended,
        "completed" => JobState::Completed,
        other => return Err(format!("unknown job state {other:?}")),
    })
}

/// Event kinds reuse their `Display` strings; this is the inverse. The
/// token table is rendered once — event logs hit this for every entry.
fn event_kind_from_token(token: &str) -> Result<SchedulerEventKind, String> {
    use std::sync::OnceLock;
    use SchedulerEventKind::*;
    static TOKENS: OnceLock<Vec<(String, SchedulerEventKind)>> = OnceLock::new();
    let tokens = TOKENS.get_or_init(|| {
        [
            Submitted,
            Placed,
            Blocked,
            TransitStarted,
            BlockingDetected,
            MigrationStarted,
            MigratedOut,
            SpecialServiceStarted,
            Suspended,
            Resumed,
            ReservationBegan,
            ReservationReleased,
            Completed,
            NodeCrashed,
            NodeRestarted,
            MigrationFailed,
            Requeued,
            JobResized,
        ]
        .into_iter()
        .map(|kind| (kind.to_string(), kind))
        .collect()
    });
    tokens
        .iter()
        .find(|(text, _)| text == token)
        .map(|(_, kind)| *kind)
        .ok_or_else(|| format!("unknown event kind {token:?}"))
}

// ---- jobs ----------------------------------------------------------------

fn job_to_json(job: &RunningJob) -> Json {
    Json::obj([
        ("spec", spec_to_json(&job.spec)),
        ("progress_secs", Json::f64(job.progress_secs)),
        ("breakdown", breakdown_to_json(&job.breakdown)),
        ("state", Json::str(state_token(job.state))),
        ("migrations", Json::U64(u64::from(job.migrations))),
        ("remote_submitted", Json::Bool(job.remote_submitted)),
        (
            "completed_at",
            match job.completed_at {
                Some(t) => Json::U64(t.as_micros()),
                None => Json::Null,
            },
        ),
        ("width", Json::U64(u64::from(job.width))),
    ])
}

fn job_from_json(doc: &Json) -> Result<RunningJob, String> {
    Ok(RunningJob {
        spec: spec_from_json(field(doc, "spec")?)?,
        progress_secs: f64_field(doc, "progress_secs")?,
        breakdown: breakdown_from_json(field(doc, "breakdown")?)?,
        state: state_from_token(str_field(doc, "state")?)?,
        migrations: u32_field(doc, "migrations")?,
        remote_submitted: field(doc, "remote_submitted")?
            .as_bool()
            .ok_or("remote_submitted is not a bool")?,
        completed_at: match field(doc, "completed_at")? {
            Json::Null => None,
            other => Some(SimTime::from_micros(
                other.as_u64().ok_or("completed_at is not an integer")?,
            )),
        },
        width: u32_field(doc, "width")?,
        phase_memo: Default::default(),
    })
}

fn spec_to_json(spec: &JobSpec) -> Json {
    Json::obj([
        ("id", Json::U64(spec.id.0)),
        ("name", Json::str(&spec.name)),
        ("class", Json::str(class_token(spec.class))),
        ("submit", Json::U64(spec.submit.as_micros())),
        ("cpu_work", Json::U64(spec.cpu_work.as_micros())),
        (
            "memory",
            Json::Arr(
                spec.memory
                    .phases()
                    .iter()
                    .map(|p| {
                        Json::Arr(vec![
                            Json::U64(p.until_progress.as_micros()),
                            Json::U64(p.working_set.as_u64()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("io_rate", Json::f64(spec.io_rate)),
        (
            "malleable",
            match spec.malleable {
                Some(m) => Json::Arr(vec![
                    Json::U64(u64::from(m.min_width)),
                    Json::U64(u64::from(m.max_width)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

fn spec_from_json(doc: &Json) -> Result<JobSpec, String> {
    let phases = arr_field(doc, "memory")?
        .iter()
        .map(|p| {
            let pair = p.as_arr().ok_or("memory phase is not a pair")?;
            let [until, ws] = pair else {
                return Err("memory phase is not a pair".to_owned());
            };
            Ok((
                SimSpan::from_micros(until.as_u64().ok_or("phase boundary is not an integer")?),
                Bytes::new(ws.as_u64().ok_or("working set is not an integer")?),
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(JobSpec {
        id: JobId(u64_field(doc, "id")?),
        name: str_field(doc, "name")?.to_owned(),
        class: class_from_token(str_field(doc, "class")?)?,
        submit: time_field(doc, "submit")?,
        cpu_work: span_field(doc, "cpu_work")?,
        memory: MemoryProfile::from_phases(phases).map_err(|e| e.to_string())?,
        io_rate: f64_field(doc, "io_rate")?,
        malleable: match field(doc, "malleable")? {
            Json::Null => None,
            other => {
                let pair = other.as_arr().ok_or("malleable is not a pair")?;
                let [min, max] = pair else {
                    return Err("malleable is not a pair".to_owned());
                };
                let min = min.as_u64().ok_or("malleable min width is not an integer")?;
                let max = max.as_u64().ok_or("malleable max width is not an integer")?;
                let spec = MalleableSpec {
                    min_width: u32::try_from(min).map_err(|_| "malleable min exceeds u32")?,
                    max_width: u32::try_from(max).map_err(|_| "malleable max exceeds u32")?,
                };
                spec.validate()?;
                Some(spec)
            }
        },
    })
}

fn breakdown_to_json(b: &TimeBreakdown) -> Json {
    Json::obj([
        ("cpu", Json::f64(b.cpu)),
        ("page", Json::f64(b.page)),
        ("queue", Json::f64(b.queue)),
        ("migration", Json::f64(b.migration)),
    ])
}

fn breakdown_from_json(doc: &Json) -> Result<TimeBreakdown, String> {
    Ok(TimeBreakdown {
        cpu: f64_field(doc, "cpu")?,
        page: f64_field(doc, "page")?,
        queue: f64_field(doc, "queue")?,
        migration: f64_field(doc, "migration")?,
    })
}

// ---- summary & gauges ----------------------------------------------------

fn summary_to_json(s: &WorkloadSummary) -> Json {
    Json::obj([
        ("jobs", Json::U64(s.jobs as u64)),
        ("totals", breakdown_to_json(&s.totals)),
        ("avg_slowdown", Json::f64(s.avg_slowdown)),
        ("slowdown", stats_summary_to_json(&s.slowdown)),
        ("median_slowdown", Json::f64(s.median_slowdown)),
        ("p95_slowdown", Json::f64(s.p95_slowdown)),
        ("migrations", Json::U64(s.migrations)),
        ("remote_submissions", Json::U64(s.remote_submissions)),
    ])
}

fn summary_from_json(doc: &Json) -> Result<WorkloadSummary, String> {
    Ok(WorkloadSummary {
        jobs: usize_field(doc, "jobs")?,
        totals: breakdown_from_json(field(doc, "totals")?)?,
        avg_slowdown: f64_field(doc, "avg_slowdown")?,
        slowdown: stats_summary_from_json(field(doc, "slowdown")?)?,
        median_slowdown: f64_field(doc, "median_slowdown")?,
        p95_slowdown: f64_field(doc, "p95_slowdown")?,
        migrations: u64_field(doc, "migrations")?,
        remote_submissions: u64_field(doc, "remote_submissions")?,
    })
}

fn stats_summary_to_json(s: &Summary) -> Json {
    Json::obj([
        ("count", Json::U64(s.count)),
        ("mean", Json::f64(s.mean)),
        ("std_dev", Json::f64(s.std_dev)),
        ("min", Json::f64(s.min)),
        ("max", Json::f64(s.max)),
    ])
}

fn stats_summary_from_json(doc: &Json) -> Result<Summary, String> {
    Ok(Summary {
        count: u64_field(doc, "count")?,
        mean: f64_field(doc, "mean")?,
        std_dev: f64_field(doc, "std_dev")?,
        min: f64_field(doc, "min")?,
        max: f64_field(doc, "max")?,
    })
}

fn series_to_json(s: &TimeSeries) -> Json {
    Json::Arr(
        s.iter()
            .map(|(t, v)| Json::Arr(vec![Json::U64(t.as_micros()), Json::f64(v)]))
            .collect(),
    )
}

fn series_from_json(doc: &Json, what: &str) -> Result<TimeSeries, String> {
    let samples = doc
        .as_arr()
        .ok_or_else(|| format!("{what} is not an array"))?;
    let mut last: Option<SimTime> = None;
    samples
        .iter()
        .map(|sample| {
            let pair = sample
                .as_arr()
                .ok_or_else(|| format!("{what} sample is not a pair"))?;
            let [t, v] = pair else {
                return Err(format!("{what} sample is not a pair"));
            };
            let t = SimTime::from_micros(
                t.as_u64()
                    .ok_or_else(|| format!("{what} timestamp is not an integer"))?,
            );
            let v = v
                .as_f64()
                .ok_or_else(|| format!("{what} value is not a number"))?;
            if v.is_nan() {
                return Err(format!("{what} holds a NaN sample"));
            }
            if last.is_some_and(|prev| t < prev) {
                return Err(format!("{what} samples are out of order"));
            }
            last = Some(t);
            Ok((t, v))
        })
        .collect()
}

fn gauges_to_json(g: &ClusterGauges) -> Json {
    Json::obj([
        ("idle_memory_mb", series_to_json(&g.idle_memory_mb)),
        (
            "physical_idle_memory_mb",
            series_to_json(&g.physical_idle_memory_mb),
        ),
        ("balance_skew", series_to_json(&g.balance_skew)),
        ("reserved_nodes", series_to_json(&g.reserved_nodes)),
        ("pending_jobs", series_to_json(&g.pending_jobs)),
    ])
}

fn gauges_from_json(doc: &Json) -> Result<ClusterGauges, String> {
    Ok(ClusterGauges {
        idle_memory_mb: series_from_json(field(doc, "idle_memory_mb")?, "idle_memory_mb")?,
        physical_idle_memory_mb: series_from_json(
            field(doc, "physical_idle_memory_mb")?,
            "physical_idle_memory_mb",
        )?,
        balance_skew: series_from_json(field(doc, "balance_skew")?, "balance_skew")?,
        reserved_nodes: series_from_json(field(doc, "reserved_nodes")?, "reserved_nodes")?,
        pending_jobs: series_from_json(field(doc, "pending_jobs")?, "pending_jobs")?,
    })
}

// ---- counters ------------------------------------------------------------

fn counters_to_json(c: &SchedulerCounters) -> Json {
    Json::obj([
        ("local_submissions", Json::U64(c.local_submissions)),
        ("remote_submissions", Json::U64(c.remote_submissions)),
        ("blocked_submissions", Json::U64(c.blocked_submissions)),
        ("overload_migrations", Json::U64(c.overload_migrations)),
        ("reserved_migrations", Json::U64(c.reserved_migrations)),
        ("blocking_detections", Json::U64(c.blocking_detections)),
        ("stale_rejections", Json::U64(c.stale_rejections)),
        ("suspensions", Json::U64(c.suspensions)),
        ("resumes", Json::U64(c.resumes)),
        ("grows", Json::U64(c.grows)),
        ("shrinks", Json::U64(c.shrinks)),
    ])
}

fn counters_from_json(doc: &Json) -> Result<SchedulerCounters, String> {
    Ok(SchedulerCounters {
        local_submissions: u64_field(doc, "local_submissions")?,
        remote_submissions: u64_field(doc, "remote_submissions")?,
        blocked_submissions: u64_field(doc, "blocked_submissions")?,
        overload_migrations: u64_field(doc, "overload_migrations")?,
        reserved_migrations: u64_field(doc, "reserved_migrations")?,
        blocking_detections: u64_field(doc, "blocking_detections")?,
        stale_rejections: u64_field(doc, "stale_rejections")?,
        suspensions: u64_field(doc, "suspensions")?,
        resumes: u64_field(doc, "resumes")?,
        grows: u64_field(doc, "grows")?,
        shrinks: u64_field(doc, "shrinks")?,
    })
}

fn reservations_to_json(r: &ReservationStats) -> Json {
    Json::obj([
        ("started", Json::U64(r.started)),
        (
            "released_after_service",
            Json::U64(r.released_after_service),
        ),
        ("released_unused", Json::U64(r.released_unused)),
        ("timed_out", Json::U64(r.timed_out)),
        ("jobs_served", Json::U64(r.jobs_served)),
    ])
}

fn reservations_from_json(doc: &Json) -> Result<ReservationStats, String> {
    Ok(ReservationStats {
        started: u64_field(doc, "started")?,
        released_after_service: u64_field(doc, "released_after_service")?,
        released_unused: u64_field(doc, "released_unused")?,
        timed_out: u64_field(doc, "timed_out")?,
        jobs_served: u64_field(doc, "jobs_served")?,
    })
}

fn node_counters_to_json(c: &NodeCounters) -> Json {
    Json::obj([
        ("delivered_cpu", Json::f64(c.delivered_cpu)),
        ("page_stall", Json::f64(c.page_stall)),
        ("admitted", Json::U64(c.admitted)),
        ("completed", Json::U64(c.completed)),
        ("migrated_out", Json::U64(c.migrated_out)),
        ("io_ops", Json::f64(c.io_ops)),
    ])
}

fn node_counters_from_json(doc: &Json) -> Result<NodeCounters, String> {
    Ok(NodeCounters {
        delivered_cpu: f64_field(doc, "delivered_cpu")?,
        page_stall: f64_field(doc, "page_stall")?,
        admitted: u64_field(doc, "admitted")?,
        completed: u64_field(doc, "completed")?,
        migrated_out: u64_field(doc, "migrated_out")?,
        io_ops: f64_field(doc, "io_ops")?,
    })
}

fn faults_to_json(f: &FaultCounters) -> Json {
    Json::obj([
        ("crashes", Json::U64(f.crashes)),
        ("restarts", Json::U64(f.restarts)),
        ("migration_failures", Json::U64(f.migration_failures)),
        ("migration_retries", Json::U64(f.migration_retries)),
        ("migrations_abandoned", Json::U64(f.migrations_abandoned)),
        ("requeued_jobs", Json::U64(f.requeued_jobs)),
        ("lost_load_reports", Json::U64(f.lost_load_reports)),
        ("stalled_releases", Json::U64(f.stalled_releases)),
    ])
}

fn faults_from_json(doc: &Json) -> Result<FaultCounters, String> {
    Ok(FaultCounters {
        crashes: u64_field(doc, "crashes")?,
        restarts: u64_field(doc, "restarts")?,
        migration_failures: u64_field(doc, "migration_failures")?,
        migration_retries: u64_field(doc, "migration_retries")?,
        migrations_abandoned: u64_field(doc, "migrations_abandoned")?,
        requeued_jobs: u64_field(doc, "requeued_jobs")?,
        lost_load_reports: u64_field(doc, "lost_load_reports")?,
        stalled_releases: u64_field(doc, "stalled_releases")?,
    })
}

fn run_stats_to_json(s: &RunStats) -> Json {
    Json::obj([
        ("events_processed", Json::U64(s.events_processed)),
        ("final_time", Json::U64(s.final_time.as_micros())),
        ("drained", Json::Bool(s.drained)),
    ])
}

fn run_stats_from_json(doc: &Json) -> Result<RunStats, String> {
    Ok(RunStats {
        events_processed: u64_field(doc, "events_processed")?,
        final_time: SimTime::from_micros(u64_field(doc, "final_time")?),
        drained: field(doc, "drained")?
            .as_bool()
            .ok_or("drained is not a bool")?,
    })
}

// ---- events --------------------------------------------------------------

fn events_to_json(log: &EventLog) -> Json {
    Json::Arr(
        log.entries()
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::U64(e.time.as_micros()),
                    Json::str(e.kind.to_string()),
                    match e.job {
                        Some(JobId(id)) => Json::U64(id),
                        None => Json::Null,
                    },
                    match e.node {
                        Some(NodeId(id)) => Json::U64(u64::from(id)),
                        None => Json::Null,
                    },
                ])
            })
            .collect(),
    )
}

fn events_from_json(doc: &Json) -> Result<EventLog, String> {
    let entries = doc.as_arr().ok_or("events is not an array")?;
    let mut log = EventLog::new();
    let mut last = SimTime::ZERO;
    for entry in entries {
        let tuple = entry.as_arr().ok_or("event entry is not a tuple")?;
        let [time, kind, job, node] = tuple else {
            return Err("event entry is not a 4-tuple".to_owned());
        };
        let time = SimTime::from_micros(time.as_u64().ok_or("event time is not an integer")?);
        if time < last {
            return Err("event log is out of order".to_owned());
        }
        last = time;
        let kind = event_kind_from_token(kind.as_str().ok_or("event kind is not a string")?)?;
        let job = match job {
            Json::Null => None,
            other => Some(JobId(other.as_u64().ok_or("event job is not an integer")?)),
        };
        let node = match node {
            Json::Null => None,
            other => {
                let id = other.as_u64().ok_or("event node is not an integer")?;
                Some(NodeId(
                    u32::try_from(id).map_err(|_| "event node exceeds u32")?,
                ))
            }
        };
        log.record(time, kind, job, node);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::job::MemPhase;

    fn sample_report() -> RunReport {
        let spec = JobSpec {
            id: JobId(3),
            name: "mcf".into(),
            class: JobClass::CpuMemoryIntensive,
            submit: SimTime::from_secs(5),
            cpu_work: SimSpan::from_secs(120),
            memory: MemoryProfile::from_phases(vec![
                (SimSpan::from_secs(10), Bytes::from_mb(20)),
                (SimSpan::MAX, Bytes::from_mb(90)),
            ])
            .unwrap(),
            io_rate: 0.25,
            malleable: Some(MalleableSpec {
                min_width: 1,
                max_width: 4,
            }),
        };
        let mut job = RunningJob::new(spec);
        job.width = 3;
        job.progress_secs = 120.0;
        job.breakdown = TimeBreakdown {
            cpu: 120.0,
            page: 3.5,
            queue: 17.25,
            migration: 0.125,
        };
        job.state = JobState::Completed;
        job.migrations = 2;
        job.remote_submitted = true;
        job.completed_at = Some(SimTime::from_secs_f64(145.875));

        let mut events = EventLog::new();
        events.record(
            SimTime::from_secs(5),
            SchedulerEventKind::Submitted,
            Some(JobId(3)),
            Some(NodeId(1)),
        );
        events.record(
            SimTime::from_secs(6),
            SchedulerEventKind::ReservationBegan,
            None,
            Some(NodeId(2)),
        );
        events.record(
            SimTime::from_secs_f64(145.875),
            SchedulerEventKind::Completed,
            Some(JobId(3)),
            None,
        );

        let mut gauges = ClusterGauges::default();
        gauges.idle_memory_mb.push(SimTime::from_secs(1), 100.5);
        gauges.idle_memory_mb.push(SimTime::from_secs(2), 99.25);
        gauges.balance_skew.push(SimTime::from_secs(1), 0.1);
        gauges.pending_jobs.push(SimTime::from_secs(1), 2.0);

        let summary = WorkloadSummary::of_jobs(std::iter::once(&job));
        RunReport {
            trace_name: "Round-Trip".into(),
            policy: PolicyKind::VReconfiguration,
            seed: u64::MAX - 1,
            jobs: vec![job],
            summary,
            gauges,
            counters: SchedulerCounters {
                local_submissions: 1,
                remote_submissions: 2,
                blocked_submissions: 3,
                overload_migrations: 4,
                reserved_migrations: 5,
                blocking_detections: 6,
                stale_rejections: 7,
                suspensions: 8,
                resumes: 9,
                grows: 10,
                shrinks: 11,
            },
            reservations: ReservationStats {
                started: 1,
                released_after_service: 1,
                released_unused: 0,
                timed_out: 0,
                jobs_served: 1,
            },
            node_counters: vec![NodeCounters {
                delivered_cpu: 120.0,
                page_stall: 3.5,
                admitted: 1,
                completed: 1,
                migrated_out: 0,
                io_ops: 30.0,
            }],
            events,
            finished_at: SimTime::from_secs_f64(145.875),
            run_stats: RunStats {
                events_processed: 42,
                final_time: SimTime::from_secs_f64(145.875),
                drained: false,
            },
            unfinished_jobs: 0,
            faults: FaultCounters {
                crashes: 1,
                restarts: 1,
                migration_failures: 2,
                migration_retries: 2,
                migrations_abandoned: 0,
                requeued_jobs: 3,
                lost_load_reports: 4,
                stalled_releases: 5,
            },
            audit_violations: vec!["example \"violation\"\nwith newline".into()],
        }
    }

    #[test]
    fn round_trip_is_lossless_and_deterministic() {
        let report = sample_report();
        let text = encode_report(&report);
        let decoded = decode_report(&text).unwrap();
        assert_eq!(decoded, report);
        // Re-encoding the decoded report is byte-identical.
        assert_eq!(encode_report(&decoded), text);
    }

    #[test]
    fn round_trip_of_a_real_simulation_run() {
        use crate::config::SimConfig;
        use crate::sim::Simulation;
        let mut cluster = vr_cluster::params::ClusterParams::cluster2();
        cluster.nodes.truncate(4);
        let trace = vr_workload::synth::blocking_scenario(4, Bytes::from_mb(128));
        let config = SimConfig::new(cluster, PolicyKind::VReconfiguration).with_seed(7);
        let report = Simulation::new(config).run(&trace);
        let text = encode_report(&report);
        let decoded = decode_report(&text).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(encode_report(&decoded), text);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut text = encode_report(&sample_report());
        text = text.replacen("\"schema\":3", "\"schema\":999", 1);
        let err = decode_report(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn corrupted_documents_error_instead_of_panicking() {
        assert!(decode_report("not json").is_err());
        assert!(decode_report("{}").is_err());
        // Out-of-order event log.
        let mut report = sample_report();
        report.events = EventLog::new();
        let good = encode_report(&report);
        let bad = good.replacen(
            "\"events\":[]",
            "\"events\":[[5,\"placed\",null,null],[1,\"completed\",null,null]]",
            1,
        );
        let err = decode_report(&bad).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
        // Unknown policy token.
        let bad = good.replacen("\"policy\":\"vrecon\"", "\"policy\":\"magic\"", 1);
        assert!(decode_report(&bad).is_err());
    }

    #[test]
    fn memory_profile_phases_survive() {
        let report = sample_report();
        let decoded = decode_report(&encode_report(&report)).unwrap();
        let phases: &[MemPhase] = decoded.jobs[0].spec.memory.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[1].until_progress, SimSpan::MAX);
        assert_eq!(phases[1].working_set, Bytes::from_mb(90));
    }
}
