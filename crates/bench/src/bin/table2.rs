//! Regenerates **Table 2**: execution performance and memory-related data of
//! the 7 scientific/system application programs of workload group 2, with a
//! dedicated-environment run on a cluster-2 workstation.

use vr_bench::SIM_SEED;
use vr_cluster::job::JobId;
use vr_cluster::params::ClusterParams;
use vr_metrics::table::{fmt_f, TextTable};
use vr_simcore::rng::SimRng;
use vr_simcore::time::SimTime;
use vr_workload::apps;
use vr_workload::trace::Trace;
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn main() {
    println!("Table 2: the 7 application programs of workload group 2");
    println!("(lifetimes at catalog scale 1.0; traces apply APP_LIFETIME_SCALE)\n");
    let mut table = TextTable::new(vec![
        "program",
        "description",
        "data size",
        "working set (MB)",
        "lifetime (s)",
        "dedicated slowdown",
    ]);
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(1);
    for program in apps::programs() {
        let mut rng = SimRng::seed_from(SIM_SEED);
        let job = program.instantiate(JobId(0), SimTime::ZERO, &mut rng, 0.0);
        let trace = Trace {
            name: format!("dedicated-{}", program.name),
            jobs: vec![job],
        };
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), PolicyKind::NoLoadSharing)).run(&trace);
        assert!(report.all_completed(), "{} did not complete", program.name);
        table.row(vec![
            program.name.to_owned(),
            program.description.to_owned(),
            program.input.to_owned(),
            fmt_f(program.working_set_mb, 1),
            fmt_f(program.lifetime_secs, 1),
            fmt_f(report.avg_slowdown(), 3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "All programs fit a dedicated 128 MB workstation without page\n\
         replacement (§3.2): dedicated slowdowns are ~1.0."
    );
}
