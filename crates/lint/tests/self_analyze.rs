//! The workspace must pass its own semantic analyzer: `cargo test` fails if
//! anyone reintroduces a wall-clock leak into the deterministic layer, an
//! undisciplined RNG seed, an undocumented panic path, or a lock-discipline
//! violation in the pool/serve layer.

use std::path::Path;

use vr_lint::analyze_workspace;

#[test]
fn workspace_is_analyze_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); did the walker miss the crates?",
        report.files_scanned
    );
    assert!(
        report.fns_indexed > 500,
        "suspiciously small call-graph index ({} fns)",
        report.fns_indexed
    );
    assert!(
        report.is_clean(),
        "vr-analyze found {} diagnostic(s):\n{}",
        report.diagnostics.len(),
        report.render_text()
    );
}

#[test]
fn analyze_directives_are_all_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.allows > 0,
        "the shipped tree documents its determinism and locking invariants"
    );
    assert_eq!(
        report.stale_allows, 0,
        "stale analyze directives must be deleted, not accumulated"
    );
}
