//! Approximate intra-workspace call graph.
//!
//! Call *sites* are recovered syntactically (`path::name(`, `.name(`,
//! `name(`) and resolved to workspace functions by **name union**: a
//! method call resolves to every known method of that name, a bare call
//! to every free function of that name, and a qualified call to the
//! candidates whose `impl` type, module, file, or crate matches the last
//! path qualifier. This over-approximates (no trait dispatch resolution,
//! no type inference) and under-approximates (macro bodies are opaque,
//! operator calls are invisible) — both deliberate: the taint rules
//! consuming the graph want may-reach information and accept noise over
//! silence, and every miss is documented in ARCHITECTURE.md.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::rules::DETERMINISTIC_CRATES;
use crate::syntax::FnItem;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `qualifier::name(...)` — `qualifier` is the *last* path segment
    /// before the name (`SimRng::seed_from`, `pool::spawn`).
    Qualified(String),
    /// `receiver.name(...)`.
    Method,
    /// `name(...)`.
    Bare,
}

/// One recovered call site.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    /// Callee name.
    pub name: String,
    /// Token index of the name, for neighborhood inspection.
    pub idx: usize,
    pub line: u32,
    pub col: u32,
}

/// Control-flow keywords and ubiquitous constructors that look like bare
/// calls but never resolve to a workspace function.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move", "else",
    "break", "continue", "unsafe", "impl", "where", "pub", "use", "mod", "Some", "None", "Ok",
    "Err", "Box", "Vec", "String",
];

/// Extracts every call site inside `range` (a token index range,
/// typically a function body).
pub fn extract_calls(tokens: &[Tok], range: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (start, end) = range;
    for i in start..end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue; // macros (`name!(`) fall out here too
        }
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let kind = match prev {
            Some(p) if p.is_punct(".") => CallKind::Method,
            Some(p) if p.is_punct("::") => {
                match i.checked_sub(2).map(|q| &tokens[q]) {
                    Some(q) if q.kind == TokKind::Ident => {
                        // `self::f(...)` / `crate::f(...)` are bare calls
                        // spelled with an explicit path root.
                        if matches!(q.text.as_str(), "self" | "crate" | "super") {
                            CallKind::Bare
                        } else {
                            CallKind::Qualified(q.text.clone())
                        }
                    }
                    // `<T as Trait>::f(...)` and friends — qualifier is a
                    // type expression we do not model; treat as method-like
                    // so it still unions over same-name candidates.
                    _ => CallKind::Method,
                }
            }
            Some(p) if p.is_ident("fn") => continue, // a declaration
            _ => CallKind::Bare,
        };
        if kind == CallKind::Bare && NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        out.push(Call {
            kind,
            name: t.text.clone(),
            idx: i,
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// One function in the workspace-wide index.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub rel_path: String,
    /// Crate directory name (`serve`, `runner`, `simcore`, ...).
    pub krate: String,
    /// The parsed item.
    pub item: FnItem,
    /// File stem of `rel_path` (`pool` for `crates/runner/src/pool.rs`),
    /// matching the one-module-per-file convention.
    pub file_stem: String,
}

/// Name-indexed function table plus resolution.
#[derive(Debug, Default)]
pub struct FnIndex {
    pub fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl FnIndex {
    /// Builds the index over all analyzed functions.
    pub fn build(fns: Vec<FnInfo>) -> FnIndex {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.clone()).or_default().push(i);
        }
        FnIndex { fns, by_name }
    }

    /// Resolves a call site from `caller` to the ids of every candidate
    /// workspace function. An empty result means the callee is external
    /// (std or a vendored shim) — taint rules treat those as leaves.
    ///
    /// Two narrowing passes tame the name-union noise. *Layering*: the
    /// deterministic simulation crates sit below the orchestration tier
    /// and cannot depend on it, so a caller inside [`DETERMINISTIC_CRATES`]
    /// never resolves to a candidate outside them. *Locality*: method and
    /// bare unions prefer same-crate candidates when any exist — a bare
    /// call is same-module or imported, and a same-name method on a type
    /// from another crate is far likelier a std collision than a real
    /// callee.
    pub fn resolve(&self, call: &Call, caller: &FnInfo) -> Vec<usize> {
        let candidates = match self.by_name.get(&call.name) {
            Some(c) => c,
            None => return Vec::new(),
        };
        let mut ids: Vec<usize> = match &call.kind {
            CallKind::Qualified(q) => {
                let q = if q == "Self" {
                    match &caller.item.impl_type {
                        Some(ty) => ty.clone(),
                        None => return Vec::new(),
                    }
                } else {
                    q.clone()
                };
                candidates
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let f = &self.fns[i];
                        f.item.impl_type.as_deref() == Some(q.as_str())
                            || f.item.modules.last().map(String::as_str) == Some(q.as_str())
                            || f.file_stem == q
                            || crate_matches(&q, &f.krate)
                    })
                    .collect()
            }
            // Method calls union over every same-name associated function;
            // bare calls over every same-name free function.
            CallKind::Method => candidates
                .iter()
                .copied()
                .filter(|&i| self.fns[i].item.impl_type.is_some())
                .collect(),
            CallKind::Bare => candidates
                .iter()
                .copied()
                .filter(|&i| self.fns[i].item.impl_type.is_none())
                .collect(),
        };
        if DETERMINISTIC_CRATES.contains(&caller.krate.as_str()) {
            ids.retain(|&i| DETERMINISTIC_CRATES.contains(&self.fns[i].krate.as_str()));
        }
        if matches!(call.kind, CallKind::Method | CallKind::Bare)
            && ids.iter().any(|&i| self.fns[i].krate == caller.krate)
        {
            ids.retain(|&i| self.fns[i].krate == caller.krate);
        }
        ids
    }
}

/// `vr_simcore` / `vr-simcore` / `simcore` all name the `simcore` crate.
fn crate_matches(qualifier: &str, krate: &str) -> bool {
    qualifier == krate
        || qualifier
            .strip_prefix("vr_")
            .map(|rest| rest == krate)
            .unwrap_or(false)
}

/// Reverse-reachability with absorption: marks every function from which
/// a source is reachable through the call graph. `absorbs(id)` functions
/// become tainted but do not propagate to their callers — they are the
/// declared boundaries. Returns, for each tainted fn, the callee id it
/// got the taint through (sources map to themselves), so findings can
/// print a witness path.
pub fn tainted_from(
    sources: &[usize],
    callers_of: &BTreeMap<usize, Vec<usize>>,
    absorbs: impl Fn(usize) -> bool,
) -> BTreeMap<usize, usize> {
    let mut via: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &s in sources {
        if via.insert(s, s).is_none() {
            queue.push(s);
        }
    }
    while let Some(f) = queue.pop() {
        if absorbs(f) {
            continue; // tainted, but the boundary stops propagation
        }
        if let Some(callers) = callers_of.get(&f) {
            for &c in callers {
                if via.insert(c, f).is_none() {
                    queue.push(c);
                }
            }
        }
    }
    via
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_fns;

    fn calls_of(src: &str) -> Vec<Call> {
        let lexed = lex(src);
        let fns = parse_fns(&lexed);
        extract_calls(&lexed.tokens, fns[0].body)
    }

    #[test]
    fn call_kinds_are_classified() {
        let src =
            "fn f() { helper(); obj.method(); SimRng::seed_from(7); a::b::deep(); self::local(); }";
        let calls = calls_of(src);
        let got: Vec<(String, CallKind)> = calls
            .iter()
            .map(|c| (c.name.clone(), c.kind.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("helper".to_owned(), CallKind::Bare),
                ("method".to_owned(), CallKind::Method),
                (
                    "seed_from".to_owned(),
                    CallKind::Qualified("SimRng".to_owned())
                ),
                ("deep".to_owned(), CallKind::Qualified("b".to_owned())),
                ("local".to_owned(), CallKind::Bare),
            ]
        );
    }

    #[test]
    fn keywords_constructors_and_macros_are_not_calls() {
        let src =
            "fn f() { if x() { return Some(1); } for i in iter() {} println!(\"{}\", Ok::<u32, ()>(2).unwrap_or(3)); }";
        let names: Vec<String> = calls_of(src).into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["x", "iter", "unwrap_or"]);
    }

    fn index_of(srcs: &[(&str, &str)]) -> FnIndex {
        let mut all = Vec::new();
        for (rel, src) in srcs {
            let lexed = lex(src);
            for item in parse_fns(&lexed) {
                let krate = rel.split('/').nth(1).unwrap_or("repro").to_owned();
                let file_stem = rel
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or("")
                    .to_owned();
                all.push(FnInfo {
                    rel_path: (*rel).to_owned(),
                    krate,
                    item,
                    file_stem,
                });
            }
        }
        FnIndex::build(all)
    }

    #[test]
    fn qualified_resolution_matches_impl_module_file_and_crate() {
        let idx = index_of(&[
            (
                "crates/simcore/src/rng.rs",
                "impl SimRng { pub fn seed_from(s: u64) -> SimRng { x() } }",
            ),
            ("crates/runner/src/pool.rs", "pub fn spawn() {}"),
        ]);
        let caller = idx.fns[1].clone();
        let lexed =
            lex("fn g() { SimRng::seed_from(7); pool::spawn(); vr_simcore::rng::seed_from(1); }");
        let fns = parse_fns(&lexed);
        let calls = extract_calls(&lexed.tokens, fns[0].body);
        assert_eq!(idx.resolve(&calls[0], &caller), vec![0]);
        assert_eq!(idx.resolve(&calls[1], &caller), vec![1]);
        // rng:: matches the file stem.
        assert_eq!(idx.resolve(&calls[2], &caller), vec![0]);
    }

    #[test]
    fn method_and_bare_unions() {
        let idx = index_of(&[
            ("crates/a/src/m.rs", "impl T { fn go(&self) { x() } }"),
            (
                "crates/b/src/n.rs",
                "impl U { fn go(&self) { y() } }\nfn go() { z() }",
            ),
            ("crates/c/src/o.rs", "pub fn out() { p() }"),
        ]);
        let caller_a = idx.fns[0].clone();
        let caller_c = idx.fns[3].clone();
        let lexed = lex("fn f() { obj.go(); go(); }");
        let fns = parse_fns(&lexed);
        let calls = extract_calls(&lexed.tokens, fns[0].body);
        // Method from crate `a`: locality narrows the union to `a`'s impl.
        assert_eq!(idx.resolve(&calls[0], &caller_a), vec![0]);
        // Method from crate `c` (no local candidate): the full union.
        assert_eq!(idx.resolve(&calls[0], &caller_c), vec![0, 1]);
        // Bare: only the free fn.
        assert_eq!(idx.resolve(&calls[1], &caller_a), vec![2]);
    }

    #[test]
    fn deterministic_callers_never_resolve_into_orchestration() {
        let idx = index_of(&[
            (
                "crates/runner/src/runner.rs",
                "impl SweepRunner { pub fn run(&self) { x() } }",
            ),
            (
                "crates/core/src/sim.rs",
                "impl Simulation { pub fn run(&self) { y() } }",
            ),
        ]);
        let lexed = lex("fn f() { sim.run(); }");
        let fns = parse_fns(&lexed);
        let calls = extract_calls(&lexed.tokens, fns[0].body);
        // A caller in `check` (deterministic) only sees the core impl…
        let from_check = idx.fns[1].clone(); // any FnInfo works as caller shape
        let mut caller = from_check.clone();
        caller.krate = "check".to_owned();
        assert_eq!(idx.resolve(&calls[0], &caller), vec![1]);
        // …while a serve caller unions over both tiers.
        caller.krate = "serve".to_owned();
        assert_eq!(idx.resolve(&calls[0], &caller), vec![0, 1]);
    }

    #[test]
    fn taint_propagates_to_callers_and_stops_at_boundaries() {
        // 0 -> source(2); 1 -> 0; 3 -> 1 ; boundary at 1.
        let mut callers: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        callers.insert(2, vec![0]);
        callers.insert(0, vec![1]);
        callers.insert(1, vec![3]);
        let via = tainted_from(&[2], &callers, |id| id == 1);
        assert_eq!(via.get(&2), Some(&2));
        assert_eq!(via.get(&0), Some(&2));
        assert_eq!(via.get(&1), Some(&0)); // boundary is itself tainted…
        assert!(!via.contains_key(&3)); // …but callers beyond it are clean
    }
}
