//! The paper's headline qualitative claims, checked as executable tests on
//! reduced (fast) configurations. The quantitative reproduction lives in
//! the `vr-bench` binaries and `EXPERIMENTS.md`.

use vr_check::props;
use vrecon_repro::prelude::*;

fn cluster(nodes: usize) -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(nodes);
    c
}

fn cluster1(nodes: usize) -> ClusterParams {
    let mut c = ClusterParams::cluster1();
    c.nodes.truncate(nodes);
    c
}

/// Bursts of physically identical jobs: `(submit_secs, count, work_secs,
/// ws_mb)` per burst. Within a burst only the names differ, which is the
/// precondition for the arrival-permutation property.
fn burst_trace(bursts: &[(u64, usize, u64, u64)]) -> Trace {
    let mut jobs = Vec::new();
    for &(submit_s, count, work_s, ws_mb) in bursts {
        for _ in 0..count {
            let id = jobs.len() as u64;
            jobs.push(JobSpec {
                id: JobId(id),
                name: format!("burst-{id}"),
                class: JobClass::CpuIntensive,
                submit: SimTime::from_secs(submit_s),
                cpu_work: SimSpan::from_secs(work_s),
                memory: MemoryProfile::constant(Bytes::from_mb(ws_mb)),
                io_rate: 0.0,
                malleable: None,
            });
        }
    }
    Trace {
        name: "Synth-Bursts".into(),
        jobs,
    }
}

fn run(c: ClusterParams, policy: PolicyKind, trace: &Trace) -> RunReport {
    Simulation::new(SimConfig::new(c, policy).with_seed(7)).run(trace)
}

/// §1/§4: virtual reconfiguration resolves the blocking problem, reducing
/// execution time, queuing time, and slowdown.
#[test]
fn claim_blocking_problem_is_resolved() {
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));
    let gls = run(cluster(16), PolicyKind::GLoadSharing, &trace);
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    assert!(gls.counters.blocking_detections > 0);
    assert!(vr.reservations.jobs_served > 0);
    assert!(vr.total_execution_secs() < gls.total_execution_secs());
    assert!(vr.total_queue_secs() < gls.total_queue_secs());
    assert!(vr.avg_slowdown() < gls.avg_slowdown());
}

/// §2.2: "the policy should be beneficial to both large and other jobs" —
/// large jobs get dedicated service, so they must not be starved.
#[test]
fn claim_large_jobs_are_not_starved() {
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));
    let gls = run(cluster(16), PolicyKind::GLoadSharing, &trace);
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    let giant_mean = |r: &RunReport| {
        let s: Vec<f64> = r
            .jobs
            .iter()
            .filter(|j| j.spec.name == "giant")
            .map(|j| j.slowdown())
            .collect();
        s.iter().sum::<f64>() / s.len() as f64
    };
    assert!(
        giant_mean(&vr) <= giant_mean(&gls) * 1.05,
        "giants suffered under V-R: {:.2} vs {:.2}",
        giant_mean(&vr),
        giant_mean(&gls)
    );
}

/// §2.1: "as soon as the blocking problem is resolved ... the system will
/// adaptively switch back to the normal load sharing state."
#[test]
fn claim_reservations_are_adaptive_not_permanent() {
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    // Every reservation was released by the end of the run...
    let r = vr.reservations;
    assert_eq!(
        r.started,
        r.released_after_service + r.released_unused + r.timed_out
    );
    // ...and the cluster ends with zero reserved workstations.
    assert_eq!(vr.gauges.reserved_nodes.last().map(|(_, v)| v), Some(0.0));
}

/// §5 condition 1: on a lightly loaded cluster, reconfiguration stays
/// inactive (the adaptive trigger never fires).
#[test]
fn claim_no_reconfiguration_under_light_load() {
    let trace = synth::light_load(30, &mut SimRng::seed_from(3));
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    assert_eq!(vr.reservations.started, 0);
    assert_eq!(vr.counters.blocking_detections, 0);
    assert!(vr.avg_slowdown() < 1.5);
}

/// §5 condition 2: with equally sized *modest* memory demands, V-R ≈ G-LS
/// — "the chance of unsuitable resource allocations is very small", so
/// there is nothing for reconfiguration to fix (and it must not hurt).
///
/// Note the demands must be modest: a workload of equal *half-node* jobs is
/// not covered by the paper's condition, because then every job is a
/// "large" job and reservations still pay off.
#[test]
fn claim_equal_memory_demands_neutralize_vr() {
    let trace = synth::equal_memory(120, Bytes::from_mb(24), &mut SimRng::seed_from(5));
    let gls = run(cluster(16), PolicyKind::GLoadSharing, &trace);
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    let rel = (vr.avg_slowdown() - gls.avg_slowdown()).abs() / gls.avg_slowdown();
    assert!(
        rel < 0.15,
        "equal-memory workload should be ~neutral: G-LS {:.2} vs V-R {:.2}",
        gls.avg_slowdown(),
        vr.avg_slowdown()
    );
}

/// §2.2 point 4: when big jobs dominate, the reservation cap protects
/// normal jobs — reserved workstations never exceed the configured
/// fraction.
#[test]
fn claim_reservation_cap_protects_normal_jobs() {
    let trace = synth::big_job_dominant(150, Bytes::from_mb(128), 0.7, &mut SimRng::seed_from(4));
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    let cap = ReservationOptions::default().max_reserved(16) as f64;
    let peak = vr.gauges.reserved_nodes.values().fold(0.0f64, f64::max);
    assert!(peak <= cap, "peak {peak} reserved exceeds cap {cap}");
}

/// §1: memory-blind policies (balancing job counts only) lose to
/// memory-aware load sharing on memory-pressured workloads.
#[test]
fn claim_memory_awareness_matters() {
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));
    let cpu_only = run(cluster(16), PolicyKind::CpuOnly, &trace);
    let gls = run(cluster(16), PolicyKind::GLoadSharing, &trace);
    assert!(
        gls.avg_slowdown() < cpu_only.avg_slowdown(),
        "G-LS {:.2} should beat CPU-only {:.2}",
        gls.avg_slowdown(),
        cpu_only.avg_slowdown()
    );
}

/// The overhead claim, structurally: V-Reconfiguration performs no more
/// placement work per job than G-Loadsharing (same placement path), and
/// the extra machinery only engages on blocking detections.
#[test]
fn claim_adaptive_process_is_cheap() {
    let trace = synth::light_load(30, &mut SimRng::seed_from(3));
    let gls = run(cluster(16), PolicyKind::GLoadSharing, &trace);
    let vr = run(cluster(16), PolicyKind::VReconfiguration, &trace);
    // With no blocking, the two policies are observationally identical.
    assert_eq!(gls.summary, vr.summary);
    assert_eq!(gls.counters, vr.counters);
}

/// §2.3: a job larger than any workstation's user memory still gets
/// dedicated service on a reserved workstation, "where its page faults will
/// not affect performance of other jobs".
#[test]
fn claim_oversized_job_gets_dedicated_service() {
    // An 8-node 128 MB cluster, moderately busy, plus one 150 MB monster
    // (bigger than user memory, within user+swap).
    let mut jobs = synth::blocking_scenario(8, Bytes::from_mb(128)).jobs;
    let monster_id = jobs.len() as u64;
    jobs.push(JobSpec {
        id: JobId(monster_id),
        name: "monster".into(),
        class: JobClass::MemoryIntensive,
        submit: SimTime::from_secs(30),
        cpu_work: SimSpan::from_secs(300),
        memory: MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(10), Bytes::from_mb(20)),
            (SimSpan::MAX, Bytes::from_mb(150)),
        ])
        .unwrap(),
        io_rate: 0.0,
        malleable: None,
    });
    jobs.sort_by_key(|j| j.submit);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    let trace = Trace {
        name: "Synth-Oversized".into(),
        jobs,
    };
    let report = run(cluster(8), PolicyKind::VReconfiguration, &trace);
    assert!(
        report.all_completed(),
        "{} unfinished",
        report.unfinished_jobs
    );
    let monster = report
        .jobs
        .iter()
        .find(|j| j.spec.name == "monster")
        .unwrap();
    assert!(monster.completed_at.is_some());
    // The monster oversubscribes even a dedicated node, so it faults —
    // but it finishes, and the cluster still reconfigures around it.
    assert!(report.reservations.started > 0);
}

/// The network-RAM extension (§2.3 / ref [12]) helps exactly this case:
/// the oversized job's faults become network transfers instead of disk.
#[test]
fn claim_network_ram_helps_oversized_jobs() {
    let mut jobs = synth::blocking_scenario(8, Bytes::from_mb(128)).jobs;
    let monster_id = jobs.len() as u64;
    jobs.push(JobSpec {
        id: JobId(monster_id),
        name: "monster".into(),
        class: JobClass::MemoryIntensive,
        submit: SimTime::from_secs(30),
        cpu_work: SimSpan::from_secs(300),
        memory: MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(10), Bytes::from_mb(20)),
            (SimSpan::MAX, Bytes::from_mb(150)),
        ])
        .unwrap(),
        io_rate: 0.0,
        malleable: None,
    });
    jobs.sort_by_key(|j| j.submit);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    let trace = Trace {
        name: "Synth-Oversized".into(),
        jobs,
    };
    let monster_slowdown = |netram: bool| {
        let mut config = SimConfig::new(cluster(8), PolicyKind::VReconfiguration).with_seed(7);
        if netram {
            config = config.with_network_ram();
        }
        let report = Simulation::new(config).run(&trace);
        report
            .jobs
            .iter()
            .find(|j| j.spec.name == "monster")
            .unwrap()
            .slowdown()
    };
    let disk = monster_slowdown(false);
    let netram = monster_slowdown(true);
    assert!(
        netram < disk,
        "network RAM should help the oversized job: {netram:.2} vs {disk:.2}"
    );
}

/// Metamorphic check for workload group 1 (cluster 1, large-memory nodes):
/// uniformly scaling every CPU's speed rescales the whole trajectory in
/// time — completions move by exactly `1/factor` while CPU and page-stall
/// breakdowns stay invariant. A modelling error that couples wall-clock
/// time into progress space (or vice versa) breaks this relation.
#[test]
fn metamorphic_cpu_speed_scaling_group1() {
    let trace = burst_trace(&[(0, 8, 240, 48)]);
    let config = SimConfig::new(cluster1(4), PolicyKind::NoLoadSharing).with_seed(7);
    for factor in [0.5, 2.0] {
        props::cpu_speed_scaling(&config, &trace, factor)
            .unwrap_or_else(|e| panic!("cluster1, factor {factor}: {e}"));
    }
}

/// The same speed-scaling relation for workload group 2 (cluster 2,
/// memory-constrained nodes) — here the jobs overflow user memory enough
/// to page, so the invariance of the page-stall component is exercised,
/// not just trivially zero.
#[test]
fn metamorphic_cpu_speed_scaling_group2() {
    let trace = burst_trace(&[(0, 8, 240, 48)]);
    let config = SimConfig::new(cluster(4), PolicyKind::NoLoadSharing).with_seed(7);
    for factor in [0.5, 2.0] {
        props::cpu_speed_scaling(&config, &trace, factor)
            .unwrap_or_else(|e| panic!("cluster2, factor {factor}: {e}"));
    }
}

/// Metamorphic check for workload group 1: permuting physically identical
/// jobs within each arrival burst cannot change any compared report field
/// under V-Reconfiguration — the scheduler may not key decisions off job
/// identity, only off the resources a job demands.
#[test]
fn metamorphic_arrival_permutation_group1() {
    let trace = burst_trace(&[(0, 6, 180, 96), (60, 6, 180, 96), (120, 6, 180, 96)]);
    let config = SimConfig::new(cluster1(4), PolicyKind::VReconfiguration).with_seed(7);
    props::arrival_burst_permutation_invariance(&config, &trace, 17)
        .unwrap_or_else(|e| panic!("cluster1: {e}"));
}

/// The same permutation invariance on workload group 2, where 48 MB bursts
/// against 128 MB nodes drive overload migrations and reservations — the
/// reconfiguration machinery itself must also be identity-blind.
#[test]
fn metamorphic_arrival_permutation_group2() {
    let trace = burst_trace(&[(0, 6, 180, 48), (60, 6, 180, 48), (120, 6, 180, 48)]);
    let config = SimConfig::new(cluster(4), PolicyKind::VReconfiguration).with_seed(7);
    props::arrival_burst_permutation_invariance(&config, &trace, 17)
        .unwrap_or_else(|e| panic!("cluster2: {e}"));
}
