//! Simulation configuration.

use serde::{Deserialize, Serialize};
use vr_cluster::netram::NetworkRamParams;
use vr_cluster::params::ClusterParams;
use vr_faults::FaultPlan;
use vr_simcore::time::SimSpan;

use crate::plugin::{build_policy, ParamBag};
use crate::policy::PolicyKind;

/// How the cluster-level queue of blocked submissions is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PendingDiscipline {
    /// Strict FIFO: a blocked job at the head blocks everything behind it.
    /// This is what "job submissions ... will be blocked" means in the
    /// paper — and it is what makes the blocking problem expensive: one
    /// large job at the head strands idle memory across the whole cluster
    /// ("there are still large accumulated idle memory space volumes
    /// available among the workstations"). It is also the fair choice the
    /// paper cares about (large jobs must not starve).
    Fifo,
    /// Out-of-order backfill: any queued job that fits somewhere is placed.
    /// A stronger (unfair) baseline used for ablation; it keeps memory
    /// saturated and starves large jobs behind a stream of small ones.
    Backfill,
}

/// When a reserving period ends (§2.1 describes both variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReservingEnd {
    /// The period lasts until every job already running on the reserved
    /// workstation completes (the paper's primary definition).
    AllJobsComplete,
    /// "One alternative is to end the reserving period as soon as the
    /// available memory space in the reserved workstation is sufficiently
    /// large for a job migration with large memory demand."
    EnoughMemory,
}

/// Tunables of the virtual-reconfiguration routine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationOptions {
    /// When the reserving period ends.
    pub end_condition: ReservingEnd,
    /// Ceiling on the fraction of workstations that may be reserved at
    /// once, protecting normal jobs when big jobs are dominant (§2.2,
    /// point 4).
    pub max_reserved_fraction: f64,
    /// "If a workstation can not be reserved within a pre-determined time
    /// interval, it implies that the cluster is truly heavily loaded"
    /// (§2.3) — the reservation is abandoned after this long in the
    /// reserving phase.
    pub reserve_timeout: SimSpan,
}

impl Default for ReservationOptions {
    fn default() -> Self {
        ReservationOptions {
            end_condition: ReservingEnd::AllJobsComplete,
            max_reserved_fraction: 0.25,
            reserve_timeout: SimSpan::from_secs(300),
        }
    }
}

impl ReservationOptions {
    /// Maximum simultaneously reserved workstations for a cluster of
    /// `cluster_size` (always at least 1).
    pub fn max_reserved(&self, cluster_size: usize) -> usize {
        ((cluster_size as f64 * self.max_reserved_fraction).floor() as usize).max(1)
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The cluster to simulate.
    pub cluster: ClusterParams,
    /// The inter-workstation scheduling policy.
    pub policy: PolicyKind,
    /// Parameters handed to the policy's registry builder (see
    /// [`ParamBag`]); the empty bag means every family's defaults. An
    /// invalid bag is a [`SimConfig::validate`] error.
    #[serde(default)]
    pub policy_params: ParamBag,
    /// Virtual-reconfiguration tunables (only used by
    /// [`PolicyKind::VReconfiguration`]).
    pub reservation: ReservationOptions,
    /// Gauge sampling period (1 s in the paper; §4.1 shows the averages are
    /// insensitive to it).
    pub sample_period: SimSpan,
    /// How often blocked (pending) jobs are re-attempted, in addition to
    /// retries on every completion.
    pub pending_retry_period: SimSpan,
    /// Service order of the blocked-submission queue.
    pub pending_discipline: PendingDiscipline,
    /// Optional network-RAM extension (§2.3 / ref \[12]): when set, nodes
    /// whose overflow fits the cluster's accumulated idle memory page to
    /// remote RAM at this service time instead of local disk.
    pub network_ram: Option<NetworkRamParams>,
    /// Overflow fraction of user memory above which a node is treated as
    /// seriously faulting and the scheduler intervenes (the "certain amount
    /// of page faults" trigger).
    pub overload_threshold: f64,
    /// RNG seed; identical configs and seeds produce identical reports.
    pub seed: u64,
    /// Safety horizon: the run aborts (reporting unfinished jobs) if the
    /// simulated clock passes this span.
    pub max_sim_time: SimSpan,
    /// Optional fault plan injected into the run (crashes, migration
    /// failures, load-information loss, reservation stalls). `None` and an
    /// empty plan are equivalent — and bit-identical in output.
    pub fault_plan: Option<FaultPlan>,
    /// When `true`, an invariant auditor checks the world after every event
    /// and records violations in [`RunReport::audit_violations`].
    ///
    /// [`RunReport::audit_violations`]: crate::report::RunReport::audit_violations
    pub audit: bool,
    /// How the overload/blocking detector derives per-node memory state.
    /// Both modes are required to produce byte-identical reports (pinned by
    /// differential tests); the knob exists so the incremental caches can
    /// be checked against the historical full rescan.
    #[serde(default)]
    pub detector: DetectorMode,
    /// How fresh each node's entry in the global load vector is. The paper
    /// assumes a perfect 1-second global exchange; at thousands of nodes
    /// that all-to-all broadcast is the first thing operators shed, so this
    /// knob models bounded-age load information (§6 discussion of scalable
    /// load sharing).
    #[serde(default)]
    pub load_info: LoadInfoMode,
    /// Whether placement accounts for capacity already committed to
    /// in-flight submissions and migrations.
    #[serde(default)]
    pub placement: PlacementMode,
}

/// How placement treats capacity that is committed but not yet resident.
///
/// The paper's scheduler places against the last load-information snapshot
/// and lets races resolve at admission — fine at 32 workstations, where at
/// most a couple of submissions share a snapshot. At thousands of nodes a
/// single exchange interval sees many arrivals, every one of which picks
/// the *same* least-loaded workstation; the losers bounce back to the
/// blocked queue and retry, and each retry pass floods the same target
/// again. Event volume then grows with (backlog × retries) — quadratic in
/// practice — which is what breaks large runs, not the per-event index
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementMode {
    /// Place against the raw snapshot; admission races re-queue the loser
    /// (the paper's behaviour, and the default).
    #[default]
    Optimistic,
    /// Subtract in-flight (committed but not yet arrived) demand and job
    /// slots from each candidate — the same accounting migration-target
    /// selection already uses — so concurrent placements spread instead of
    /// piling onto one workstation. Applies to the load-index policies
    /// (G-LS, V-R, suspension); the random/CPU-only baselines ignore it.
    CommitAware,
}

/// Freshness model for the global load-information exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LoadInfoMode {
    /// Every workstation's load vector entry is recaptured at every
    /// exchange tick — the paper's idealized global exchange.
    #[default]
    Global,
    /// Workstations report in rotating groups: node `i` is recaptured only
    /// at ticks `t` with `i % groups == t % groups`, so an entry can be up
    /// to `groups` exchange periods stale. `groups == 1` is byte-identical
    /// to [`LoadInfoMode::Global`]. Models the bounded-age load vectors a
    /// real cluster gets from staggered or gossip-style dissemination,
    /// generalizing the transient `load-info loss` fault into a standing
    /// policy.
    Staggered {
        /// Number of reporting groups (must be non-zero).
        groups: u32,
    },
}

/// Selects the mechanism behind blocking/idle-memory detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetectorMode {
    /// Re-derive each node's memory demand from its resident jobs at every
    /// query — the original O(jobs)-per-read detector, kept as the
    /// reference implementation.
    Rescan,
    /// Read the per-node demand caches maintained by delta on
    /// place/complete/migrate events (O(1) per read).
    #[default]
    Incremental,
}

impl SimConfig {
    /// A configuration with paper-standard knobs for the given cluster and
    /// policy.
    pub fn new(cluster: ClusterParams, policy: PolicyKind) -> Self {
        SimConfig {
            cluster,
            policy,
            policy_params: ParamBag::new(),
            reservation: ReservationOptions::default(),
            sample_period: SimSpan::from_secs(1),
            pending_retry_period: SimSpan::from_secs(1),
            pending_discipline: PendingDiscipline::Fifo,
            network_ram: None,
            overload_threshold: 0.02,
            seed: 0x5eed,
            max_sim_time: SimSpan::from_secs(200_000),
            fault_plan: None,
            audit: false,
            detector: DetectorMode::default(),
            load_info: LoadInfoMode::default(),
            placement: PlacementMode::default(),
        }
    }

    /// Returns the config with the network-RAM extension enabled, deriving
    /// the remote fault service from the cluster's interconnect
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the cluster's network bandwidth is not strictly positive
    /// (see [`NetworkRamParams::over`]).
    pub fn with_network_ram(mut self) -> Self {
        let page = self
            .cluster
            .nodes
            .first()
            .map(|n| n.memory.page_size)
            .unwrap_or(vr_cluster::units::Bytes::from_kb(4));
        self.network_ram = Some(NetworkRamParams::over(&self.cluster.network, page));
        self
    }

    /// Returns the config with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given policy parameter bag
    /// (builder-style); validated by [`SimConfig::validate`].
    pub fn with_policy_params(mut self, params: ParamBag) -> Self {
        self.policy_params = params;
        self
    }

    /// Returns the config with the given detector mode (see
    /// [`DetectorMode`]); reports must not depend on the choice.
    pub fn with_detector(mut self, detector: DetectorMode) -> Self {
        self.detector = detector;
        self
    }

    /// Returns the config with the given load-information freshness model
    /// (see [`LoadInfoMode`]) — builder-style.
    pub fn with_load_info(mut self, load_info: LoadInfoMode) -> Self {
        self.load_info = load_info;
        self
    }

    /// Returns the config with the given placement commitment mode (see
    /// [`PlacementMode`]) — builder-style.
    pub fn with_placement(mut self, placement: PlacementMode) -> Self {
        self.placement = placement;
        self
    }

    /// Returns the config with different reservation options
    /// (builder-style).
    pub fn with_reservation(mut self, reservation: ReservationOptions) -> Self {
        self.reservation = reservation;
        self
    }

    /// Returns the config with a fault plan injected (builder-style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns the config with invariant auditing switched on or off
    /// (builder-style).
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Overrides the safety horizon. A run stopping at this horizon with
    /// events still queued reports `run_stats.drained == false` — its
    /// measurements are truncated and consumers must flag it.
    pub fn with_max_sim_time(mut self, horizon: SimSpan) -> Self {
        self.max_sim_time = horizon;
        self
    }

    /// Checks the configuration for nonsensical values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cluster.nodes.is_empty() {
            return Err("cluster has no workstations".into());
        }
        // Building the policy plugin validates the parameter bag (unknown
        // keys, unparsable or out-of-range values).
        build_policy(self.policy, &self.policy_params)?;
        if self.sample_period.is_zero() {
            return Err("sample period must be non-zero".into());
        }
        if self.pending_retry_period.is_zero() {
            return Err("pending retry period must be non-zero".into());
        }
        if self.cluster.load_exchange_period.is_zero() {
            return Err("load exchange period must be non-zero".into());
        }
        if !(0.0..1.0).contains(&self.overload_threshold) {
            return Err(format!(
                "overload threshold must be in [0, 1), got {}",
                self.overload_threshold
            ));
        }
        if !(0.0..=1.0).contains(&self.reservation.max_reserved_fraction) {
            return Err(format!(
                "max reserved fraction must be in [0, 1], got {}",
                self.reservation.max_reserved_fraction
            ));
        }
        if self.reservation.reserve_timeout.is_zero() {
            return Err("reserve timeout must be non-zero".into());
        }
        if self.max_sim_time.is_zero() {
            return Err("max simulation time must be non-zero".into());
        }
        if let LoadInfoMode::Staggered { groups } = self.load_info {
            if groups == 0 {
                return Err("staggered load info needs at least one group".into());
            }
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
            for crash in &plan.node_crashes {
                if crash.node >= self.cluster.nodes.len() {
                    return Err(format!(
                        "fault plan crashes node {} but the cluster has {} workstations",
                        crash.node,
                        self.cluster.nodes.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Overflow bytes above which a node counts as overloaded.
    pub fn overload_bytes(&self, user: vr_cluster::units::Bytes) -> vr_cluster::units::Bytes {
        user.mul_f64(self.overload_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::units::Bytes;

    #[test]
    fn defaults_match_paper_constants() {
        let cfg = SimConfig::new(ClusterParams::cluster1(), PolicyKind::VReconfiguration);
        assert_eq!(cfg.sample_period, SimSpan::from_secs(1));
        assert_eq!(cfg.reservation.end_condition, ReservingEnd::AllJobsComplete);
        assert!(cfg.reservation.max_reserved_fraction <= 0.5);
    }

    #[test]
    fn max_reserved_scales_with_cluster() {
        let opts = ReservationOptions {
            max_reserved_fraction: 0.25,
            ..ReservationOptions::default()
        };
        assert_eq!(opts.max_reserved(32), 8);
        assert_eq!(opts.max_reserved(4), 1);
        assert_eq!(opts.max_reserved(1), 1); // floor clamps to 1
    }

    #[test]
    fn builder_helpers() {
        let cfg = SimConfig::new(ClusterParams::cluster2(), PolicyKind::GLoadSharing)
            .with_seed(99)
            .with_reservation(ReservationOptions {
                end_condition: ReservingEnd::EnoughMemory,
                ..ReservationOptions::default()
            });
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.reservation.end_condition, ReservingEnd::EnoughMemory);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_nonsense() {
        let good = SimConfig::new(ClusterParams::cluster1(), PolicyKind::VReconfiguration);
        good.validate().unwrap();
        let mut bad = good.clone();
        bad.sample_period = SimSpan::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.overload_threshold = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.reservation.max_reserved_fraction = -0.1;
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.cluster.nodes.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_checks_fault_plan_against_cluster() {
        use vr_simcore::time::SimTime;
        let base = SimConfig::new(ClusterParams::cluster1(), PolicyKind::VReconfiguration);
        let in_range =
            base.clone()
                .with_faults(FaultPlan::none().with_crash(0, SimTime::from_secs(1), None));
        in_range.validate().unwrap();
        let nodes = in_range.cluster.nodes.len();
        let out_of_range = base.clone().with_faults(FaultPlan::none().with_crash(
            nodes,
            SimTime::from_secs(1),
            None,
        ));
        assert!(out_of_range.validate().is_err());
        let bad_prob = base.with_faults(FaultPlan::none().with_migration_failures(2.0));
        assert!(bad_prob.validate().is_err());
    }

    #[test]
    fn overload_bytes_scales_user_memory() {
        let cfg = SimConfig::new(ClusterParams::cluster2(), PolicyKind::GLoadSharing);
        let b = cfg.overload_bytes(Bytes::from_mb(100));
        assert_eq!(b, Bytes::from_mb(2));
    }
}
