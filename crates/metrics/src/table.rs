//! Fixed-width text and CSV table rendering for the experiment binaries.
//!
//! Each figure/table binary prints the same rows the paper reports; this
//! module keeps the formatting in one place.
//!
//! ```
//! use vr_metrics::table::TextTable;
//!
//! let mut t = TextTable::new(vec!["trace", "G-LS", "V-R", "reduction"]);
//! t.row(vec!["SPEC-Trace-1".into(), "100.0".into(), "70.7".into(), "29.3%".into()]);
//! let text = t.render();
//! assert!(text.contains("SPEC-Trace-1"));
//! ```

/// A simple column-aligned text table that can also render as CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a column-aligned text table with a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting; cells must not contain commas).
    ///
    /// # Panics
    ///
    /// Panics if any cell contains a comma or newline.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (c, cell) in row.iter().enumerate() {
                assert!(
                    !cell.contains(',') && !cell.contains('\n'),
                    "cell {cell:?} cannot be rendered as CSV"
                );
                if c > 0 {
                    out.push(',');
                }
                out.push_str(cell);
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for table cells).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a reduction percentage in the paper's style (e.g. `"29.3%"`).
pub fn fmt_pct(value: f64) -> String {
    format!("{value:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header", "c"]);
        t.row(vec!["xxxx".into(), "1".into(), "2".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx  1"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "CSV")]
    fn csv_rejects_commas() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        t.render_csv();
    }

    #[test]
    fn float_helpers() {
        assert_eq!(fmt_f(4.5678, 2), "4.57");
        assert_eq!(fmt_pct(29.34), "29.3%");
    }
}
