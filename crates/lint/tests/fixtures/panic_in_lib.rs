pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn checked(xs: &[u32]) -> u32 {
    *xs.first().expect("xs is non-empty")
}

pub fn unreachable_branch() {
    panic!("boom");
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        super::first(&[]);
        unreachable!();
    }
}
