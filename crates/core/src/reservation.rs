//! Reservation bookkeeping for the virtual-reconfiguration routine.
//!
//! A reservation moves through two phases (§2.1):
//!
//! 1. **Reserving** — the chosen workstation stops accepting submissions and
//!    migrations while its resident jobs drain ("the reserving period").
//! 2. **Serving** — one or more large jobs have been migrated in; the
//!    workstation provides dedicated service until they complete, at which
//!    point "the scheduler will view it as a regular workstation and resume
//!    normal job submissions" — the reservation is released.
//!
//! [`ReservationManager`] owns only the bookkeeping; the simulation driver
//! flips the nodes' reservation flags and performs the migrations.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use vr_cluster::job::JobId;
use vr_cluster::node::NodeId;
use vr_simcore::time::SimTime;

use crate::config::ReservationOptions;

/// Phase of one reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReservationPhase {
    /// Waiting for the reserved workstation's resident jobs to drain.
    Reserving,
    /// Dedicated service: migrated large jobs are running.
    Serving,
}

/// One active reservation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// The reserved workstation.
    pub node: NodeId,
    /// Current phase.
    pub phase: ReservationPhase,
    /// When the reservation began.
    pub started: SimTime,
    /// Large jobs migrated in for special service (non-empty in
    /// [`ReservationPhase::Serving`]).
    pub served: BTreeSet<JobId>,
}

/// Counters over a run's reservation activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationStats {
    /// Reservations begun.
    pub started: u64,
    /// Reservations released after serving at least one job.
    pub released_after_service: u64,
    /// Reservations released because blocking disappeared during the
    /// reserving period (the adaptive early exit).
    pub released_unused: u64,
    /// Reservations abandoned on timeout ("cluster truly heavily loaded").
    pub timed_out: u64,
    /// Large jobs given dedicated service.
    pub jobs_served: u64,
}

/// Tracks which workstations are reserved and why.
#[derive(Debug, Clone)]
pub struct ReservationManager {
    options: ReservationOptions,
    reservations: Vec<Reservation>,
    stats: ReservationStats,
}

impl ReservationManager {
    /// Creates a manager with the given tunables.
    pub fn new(options: ReservationOptions) -> Self {
        ReservationManager {
            options,
            reservations: Vec::new(),
            stats: ReservationStats::default(),
        }
    }

    /// The configured tunables.
    pub fn options(&self) -> &ReservationOptions {
        &self.options
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ReservationStats {
        self.stats
    }

    /// Active reservations.
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Number of currently reserved workstations.
    pub fn reserved_count(&self) -> usize {
        self.reservations.len()
    }

    /// `true` if another workstation may be reserved given the cap.
    pub fn can_reserve(&self, cluster_size: usize) -> bool {
        self.reserved_count() < self.options.max_reserved(cluster_size)
    }

    /// The reservation on `node`, if any.
    pub fn get(&self, node: NodeId) -> Option<&Reservation> {
        self.reservations.iter().find(|r| r.node == node)
    }

    /// `true` if `node` is reserved.
    pub fn is_reserved(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Begins a reservation on `node` (the paper's
    /// `reserve_a_workstation()` setting `reservation_flag = 1`).
    ///
    /// # Panics
    ///
    /// Panics if the node is already reserved — the routine must check
    /// first.
    pub fn begin(&mut self, node: NodeId, now: SimTime) {
        assert!(
            !self.is_reserved(node),
            "{node} is already reserved; check before begin()"
        );
        self.reservations.push(Reservation {
            node,
            phase: ReservationPhase::Reserving,
            started: now,
            served: BTreeSet::new(),
        });
        self.stats.started += 1;
    }

    /// Records a large job migrated to `node` for dedicated service, moving
    /// the reservation into [`ReservationPhase::Serving`].
    ///
    /// # Panics
    ///
    /// Panics if the node is not reserved.
    pub fn record_service(&mut self, node: NodeId, job: JobId) {
        let r = self
            .reservations
            .iter_mut()
            .find(|r| r.node == node)
            // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: callers must reserve a node before recording service on it")
            .expect("record_service on an unreserved node");
        r.phase = ReservationPhase::Serving;
        r.served.insert(job);
        self.stats.jobs_served += 1;
    }

    /// Notes the completion of `job` on `node`. Returns `true` if that
    /// completion ended the special service (the served set drained), in
    /// which case the caller must release the node.
    pub fn note_completion(&mut self, node: NodeId, job: JobId) -> bool {
        let Some(r) = self.reservations.iter_mut().find(|r| r.node == node) else {
            return false;
        };
        if r.phase == ReservationPhase::Serving && r.served.remove(&job) && r.served.is_empty() {
            self.remove(node);
            self.stats.released_after_service += 1;
            return true;
        }
        false
    }

    /// Releases a reservation whose reserving period ended with no blocking
    /// left to resolve (the adaptive "switch back" of §2.1).
    ///
    /// Returns `true` if the node was reserved.
    pub fn release_unused(&mut self, node: NodeId) -> bool {
        if self.remove(node) {
            self.stats.released_unused += 1;
            true
        } else {
            false
        }
    }

    /// Abandons reservations stuck in the reserving phase longer than the
    /// configured timeout, returning the abandoned node ids.
    pub fn sweep_timeouts(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.options.reserve_timeout;
        let expired: Vec<NodeId> = self
            .reservations
            .iter()
            .filter(|r| {
                r.phase == ReservationPhase::Reserving && now.saturating_since(r.started) > timeout
            })
            .map(|r| r.node)
            .collect();
        for node in &expired {
            self.remove(*node);
            self.stats.timed_out += 1;
        }
        expired
    }

    fn remove(&mut self, node: NodeId) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.node != node);
        self.reservations.len() < before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_simcore::time::SimSpan;

    fn manager() -> ReservationManager {
        ReservationManager::new(ReservationOptions {
            reserve_timeout: SimSpan::from_secs(100),
            ..ReservationOptions::default()
        })
    }

    #[test]
    fn begin_and_query() {
        let mut m = manager();
        assert!(!m.is_reserved(NodeId(3)));
        m.begin(NodeId(3), SimTime::from_secs(10));
        assert!(m.is_reserved(NodeId(3)));
        let r = m.get(NodeId(3)).unwrap();
        assert_eq!(r.phase, ReservationPhase::Reserving);
        assert_eq!(r.started, SimTime::from_secs(10));
        assert_eq!(m.stats().started, 1);
        assert_eq!(m.reserved_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_begin_panics() {
        let mut m = manager();
        m.begin(NodeId(1), SimTime::ZERO);
        m.begin(NodeId(1), SimTime::ZERO);
    }

    #[test]
    fn cap_limits_reservations() {
        let mut m = ReservationManager::new(ReservationOptions {
            max_reserved_fraction: 0.25,
            ..ReservationOptions::default()
        });
        assert!(m.can_reserve(8)); // cap = 2
        m.begin(NodeId(0), SimTime::ZERO);
        assert!(m.can_reserve(8));
        m.begin(NodeId(1), SimTime::ZERO);
        assert!(!m.can_reserve(8));
    }

    #[test]
    fn service_lifecycle_releases_when_drained() {
        let mut m = manager();
        m.begin(NodeId(2), SimTime::ZERO);
        m.record_service(NodeId(2), JobId(10));
        m.record_service(NodeId(2), JobId(11));
        assert_eq!(m.get(NodeId(2)).unwrap().phase, ReservationPhase::Serving);
        assert!(!m.note_completion(NodeId(2), JobId(10)));
        assert!(m.is_reserved(NodeId(2)));
        assert!(m.note_completion(NodeId(2), JobId(11)));
        assert!(!m.is_reserved(NodeId(2)));
        assert_eq!(m.stats().jobs_served, 2);
        assert_eq!(m.stats().released_after_service, 1);
    }

    #[test]
    fn unrelated_completions_are_ignored() {
        let mut m = manager();
        m.begin(NodeId(2), SimTime::ZERO);
        m.record_service(NodeId(2), JobId(10));
        // A non-served job finishing on the reserved node must not release.
        assert!(!m.note_completion(NodeId(2), JobId(99)));
        assert!(m.is_reserved(NodeId(2)));
        // A completion on an unreserved node is a no-op.
        assert!(!m.note_completion(NodeId(5), JobId(10)));
    }

    #[test]
    fn release_unused_counts_adaptive_exits() {
        let mut m = manager();
        m.begin(NodeId(4), SimTime::ZERO);
        assert!(m.release_unused(NodeId(4)));
        assert!(!m.release_unused(NodeId(4)));
        assert_eq!(m.stats().released_unused, 1);
        assert_eq!(m.reserved_count(), 0);
    }

    #[test]
    fn timeouts_abandon_stuck_reserving_periods() {
        let mut m = manager();
        m.begin(NodeId(1), SimTime::ZERO);
        m.begin(NodeId(2), SimTime::from_secs(90));
        // Node 3 is serving: never timed out.
        m.begin(NodeId(3), SimTime::ZERO);
        m.record_service(NodeId(3), JobId(1));
        let expired = m.sweep_timeouts(SimTime::from_secs(150));
        assert_eq!(expired, vec![NodeId(1)]);
        assert!(m.is_reserved(NodeId(2)));
        assert!(m.is_reserved(NodeId(3)));
        assert_eq!(m.stats().timed_out, 1);
    }
}
