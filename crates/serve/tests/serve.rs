//! End-to-end tests of `vrecon serve` over real sockets: byte-identity
//! across tiers, worker counts, and restarts; protocol rejection paths;
//! request coalescing; bounded admission; and corrupt-cache recovery.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vr_check::fuzz::generate;
use vr_serve::{request, start, ServeConfig};
use vr_simcore::jsonio::Json;
use vrecon::encode_report;

const TIMEOUT: Duration = Duration::from_secs(120);

/// A scenario heavy enough (~2 s in a debug build) that a second request
/// reliably arrives while it is still simulating.
const HEAVY_JOBS: usize = 1200;

fn tmp_cache(tag: &str) -> PathBuf {
    // Compile-time scratch dir: the serve crate may not read the process
    // environment (vr-lint env-read), tests included.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("vr-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(tag: &str) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: Some(tmp_cache(tag)),
        read_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

/// What `vrecon run` would print for this spec: the report encoding plus
/// a trailing newline. The serve response body must match it exactly.
fn direct_bytes(spec: &str) -> String {
    let scenario = vr_check::CheckScenario::parse(spec).unwrap();
    let (config, trace) = scenario.to_sim().unwrap();
    let report = vr_runner::Scenario::new(config, Arc::new(trace)).run();
    format!("{}\n", encode_report(&report))
}

fn stats(addr: std::net::SocketAddr) -> Json {
    let resp = request(addr, "GET", "/stats", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    Json::parse(&resp.body).unwrap()
}

fn stat(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap()
}

#[test]
fn responses_are_byte_identical_across_tiers_workers_and_restarts() {
    let spec = generate(7, 3).render();
    let want = direct_bytes(&spec);
    let cache_dir = tmp_cache("identity");

    // Server A: one worker. Cold miss, then a warm repeat.
    let server = start(ServeConfig {
        jobs: 1,
        cache_dir: Some(cache_dir.clone()),
        ..test_config("unused-a")
    })
    .unwrap();
    let addr = server.addr();
    let cold = request(addr, "POST", "/run", &spec, TIMEOUT).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-vrecon-outcome"), Some("miss"));
    assert_eq!(
        cold.body, want,
        "cold response must match `vrecon run` bytes"
    );
    let hash = cold.header("x-vrecon-hash").unwrap().to_owned();

    let warm = request(addr, "POST", "/run", &spec, TIMEOUT).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-vrecon-outcome"), Some("hot"));
    assert_eq!(warm.header("x-vrecon-hash"), Some(hash.as_str()));
    assert_eq!(warm.body, want);
    server.shutdown();

    // Server B: same cache dir, eight workers, fresh process-state. The
    // first request is served from disk — still the same bytes.
    let server = start(ServeConfig {
        jobs: 8,
        cache_dir: Some(cache_dir.clone()),
        ..test_config("unused-b")
    })
    .unwrap();
    let addr = server.addr();
    let restarted = request(addr, "POST", "/run", &spec, TIMEOUT).unwrap();
    assert_eq!(restarted.status, 200);
    assert_eq!(restarted.header("x-vrecon-outcome"), Some("disk"));
    assert_eq!(restarted.body, want, "restart must serve identical bytes");
    let doc = stats(addr);
    assert_eq!(
        stat(&doc, "sims_executed"),
        0,
        "restart must not re-simulate"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn malformed_requests_get_wellformed_errors() {
    let server = start(test_config("errors")).unwrap();
    let addr = server.addr();

    // Bad spec → 400 with a diagnostic.
    let resp = request(addr, "POST", "/run", "policy nonsense\n", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("bad scenario spec"), "{}", resp.body);

    // Unknown path → 404; wrong method → 405.
    assert_eq!(
        request(addr, "GET", "/nope", "", TIMEOUT).unwrap().status,
        404
    );
    assert_eq!(
        request(addr, "GET", "/run", "", TIMEOUT).unwrap().status,
        405
    );

    // Raw protocol garbage → 400.
    let resp = request(addr, "POST /run", "HTTP/1.1", "", TIMEOUT);
    assert!(resp.is_err() || resp.unwrap().status == 400);

    // Slow loris: a drip of bytes, then silence → 408 within the read
    // timeout, not a hung thread.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /run HTTP/1.1\r\n").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");

    let doc = stats(addr);
    assert!(stat(&doc, "bad_requests") >= 3, "{doc:?}");
    assert_eq!(stat(&doc, "timeouts"), 1);
    assert_eq!(stat(&doc, "sims_executed"), 0);
    server.shutdown();
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_simulation() {
    let server = start(test_config("coalesce")).unwrap();
    let addr = server.addr();
    let state = Arc::clone(server.state());
    let spec = vr_serve::heavy_scenario(0, HEAVY_JOBS).render();

    let leader = {
        let spec = spec.clone();
        std::thread::spawn(move || request(addr, "POST", "/run", &spec, TIMEOUT).unwrap())
    };
    // Wait until the leader's simulation is registered in flight.
    let watch = vr_serve::clock::Stopwatch::start();
    while stat(&state.stats_json(), "in_flight") == 0 {
        assert!(
            !watch.expired(Duration::from_secs(30)),
            "leader never in flight"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || request(addr, "POST", "/run", &spec, TIMEOUT).unwrap())
        })
        .collect();
    let lead_resp = leader.join().unwrap();
    assert_eq!(lead_resp.status, 200, "{}", lead_resp.body);
    assert_eq!(lead_resp.header("x-vrecon-outcome"), Some("miss"));
    for follower in followers {
        let resp = follower.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-vrecon-outcome"), Some("coalesced"));
        assert_eq!(
            resp.body, lead_resp.body,
            "coalesced bytes must be identical"
        );
    }
    let doc = stats(addr);
    assert_eq!(
        stat(&doc, "sims_executed"),
        1,
        "followers must not re-simulate"
    );
    assert_eq!(stat(&doc, "coalesced"), 3);
    server.shutdown();
}

#[test]
fn cold_requests_past_max_inflight_are_shed_with_503() {
    let server = start(ServeConfig {
        max_inflight: 1,
        ..test_config("overload")
    })
    .unwrap();
    let addr = server.addr();
    let state = Arc::clone(server.state());

    let filler = {
        let spec = vr_serve::heavy_scenario(1, HEAVY_JOBS).render();
        std::thread::spawn(move || request(addr, "POST", "/run", &spec, TIMEOUT).unwrap())
    };
    let watch = vr_serve::clock::Stopwatch::start();
    while stat(&state.stats_json(), "in_flight") == 0 {
        assert!(
            !watch.expired(Duration::from_secs(30)),
            "filler never in flight"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // A *distinct* cold scenario must be shed...
    let shed = request(
        addr,
        "POST",
        "/run",
        &vr_serve::heavy_scenario(2, HEAVY_JOBS).render(),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.header("retry-after").is_some());
    // ...while the filler completes normally.
    assert_eq!(filler.join().unwrap().status, 200);
    let doc = stats(addr);
    assert_eq!(stat(&doc, "overloads"), 1);
    assert_eq!(stat(&doc, "sims_executed"), 1);
    server.shutdown();
}

#[test]
fn corrupt_cache_entry_is_recomputed_not_served() {
    let cache_dir = tmp_cache("corrupt");
    let spec = generate(11, 5).render();
    let want = direct_bytes(&spec);

    let server = start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..test_config("unused-c")
    })
    .unwrap();
    let addr = server.addr();
    let first = request(addr, "POST", "/run", &spec, TIMEOUT).unwrap();
    assert_eq!(first.status, 200);
    let hash = first.header("x-vrecon-hash").unwrap().to_owned();
    server.shutdown();

    // Truncate the entry on disk, as a torn write would.
    let entry = cache_dir.join(format!("{hash}.json"));
    let full = std::fs::read_to_string(&entry).unwrap();
    std::fs::write(&entry, &full[..full.len() / 3]).unwrap();

    // A fresh server must treat it as a miss, recompute, and still serve
    // the correct bytes — never a 500, never the truncated text.
    let server = start(ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..test_config("unused-d")
    })
    .unwrap();
    let addr = server.addr();
    let resp = request(addr, "POST", "/run", &spec, TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-vrecon-outcome"), Some("miss"));
    assert_eq!(resp.body, want);
    let doc = stats(addr);
    let corrupt = doc
        .get("cache")
        .and_then(|c| c.get("corrupt_entries"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(corrupt, 1, "{doc:?}");
    // The repaired entry hits from disk-backed state after the corrupt
    // one was quarantined.
    assert!(cache_dir.join(format!("{hash}.json.corrupt")).exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn connection_cap_rejects_with_429() {
    let server = start(ServeConfig {
        max_conns: 1,
        ..test_config("conncap")
    })
    .unwrap();
    let addr = server.addr();
    // Hold one connection open (it counts against the cap until its read
    // times out), then a second connection must be answered 429.
    let held = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // The reject path closes right after writing, which can reset the
    // probe before it reads the status; retry those.
    let resp = (0..5)
        .find_map(|_| request(addr, "GET", "/healthz", "", TIMEOUT).ok())
        .expect("every probe errored before reading the 429");
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert!(resp.header("retry-after").is_some());
    drop(held);
    // The held connection's handler releases its slot asynchronously (it
    // has to notice the close first), so poll until /stats gets through.
    let watch = vr_serve::clock::Stopwatch::start();
    let doc = loop {
        // A rejected connection may also surface as a client-side error
        // (the server closes mid-write), so only a 200 ends the poll.
        match request(addr, "GET", "/stats", "", TIMEOUT) {
            Ok(resp) if resp.status == 200 => break Json::parse(&resp.body).unwrap(),
            Ok(_) | Err(_) => {}
        }
        assert!(
            !watch.expired(Duration::from_secs(10)),
            "connection slot never released"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // At least the probe above was rejected; polling may add more.
    assert!(stat(&doc, "rejected_conns") >= 1, "{doc:?}");
    server.shutdown();
}
