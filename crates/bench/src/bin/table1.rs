//! Regenerates **Table 1**: execution performance and memory-related data of
//! the 6 SPEC CPU2000 benchmark programs, including a dedicated-environment
//! simulation of each program on a cluster-1 workstation to confirm the
//! catalog values are what the simulator actually delivers.

use vr_bench::SIM_SEED;
use vr_cluster::job::JobId;
use vr_cluster::params::ClusterParams;
use vr_metrics::table::{fmt_f, TextTable};
use vr_simcore::rng::SimRng;
use vr_simcore::time::SimTime;
use vr_workload::spec2000;
use vr_workload::trace::Trace;
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn main() {
    println!("Table 1: the 6 SPEC CPU2000 programs of workload group 1");
    println!("(lifetimes at catalog scale 1.0; traces apply SPEC_LIFETIME_SCALE)\n");
    let mut table = TextTable::new(vec![
        "program",
        "description",
        "input file",
        "working set (MB)",
        "lifetime (s)",
        "dedicated slowdown",
    ]);
    let mut cluster = ClusterParams::cluster1();
    cluster.nodes.truncate(1);
    for program in spec2000::programs() {
        // Dedicated run: one job, one workstation, no competition.
        let mut rng = SimRng::seed_from(SIM_SEED);
        let job = program.instantiate(JobId(0), SimTime::ZERO, &mut rng, 0.0);
        let trace = Trace {
            name: format!("dedicated-{}", program.name),
            jobs: vec![job],
        };
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), PolicyKind::NoLoadSharing)).run(&trace);
        assert!(report.all_completed(), "{} did not complete", program.name);
        table.row(vec![
            program.name.to_owned(),
            program.description.to_owned(),
            program.input.to_owned(),
            fmt_f(program.working_set_mb, 2),
            fmt_f(program.lifetime_secs, 1),
            fmt_f(report.avg_slowdown(), 3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "A dedicated slowdown of ~1.0 confirms each program runs without\n\
         major page faults on a dedicated 384 MB workstation (§3.2)."
    );
}
