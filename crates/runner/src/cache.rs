//! Content-addressed on-disk result cache.
//!
//! Finished [`RunReport`]s are stored as `<dir>/<scenario-hash>.json`
//! using the deterministic encoding in [`vrecon::report_json`]. Because
//! the file name is a content hash of the *inputs* and the file body is a
//! pure function of those inputs (the simulator is deterministic), a hit
//! can simply be decoded and returned — no validation beyond the decode
//! itself is needed, and a corrupt or stale-schema file just counts as a
//! miss and is overwritten.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so parallel workers (or parallel *processes*) racing on
//! the same key are harmless: both write identical bytes and the rename
//! is atomic either way.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use vrecon::{decode_report, encode_report, RunReport};

/// Hit/miss counters of one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that ran the simulator (including decode failures).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A result cache rooted at a directory, or disabled entirely.
///
/// A disabled cache (`ResultCache::disabled()`, the `--no-cache` escape
/// hatch) reports every lookup as a miss and stores nothing.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    write_seq: AtomicU64,
}

impl ResultCache {
    /// Default cache directory name, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = ".vr-cache";

    /// A cache rooted at `dir` (created on first store).
    pub fn at(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: Some(dir.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
        }
    }

    /// A no-op cache: every lookup misses, stores are dropped.
    pub fn disabled() -> ResultCache {
        ResultCache {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_seq: AtomicU64::new(0),
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The file a given scenario hash lives at, if caching is enabled.
    pub fn path_for(&self, hash: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{hash}.json")))
    }

    /// Looks up a scenario hash, counting the outcome. Any read or decode
    /// failure (missing file, corruption, older schema version) is a miss.
    pub fn lookup(&self, hash: &str) -> Option<RunReport> {
        let report = self
            .path_for(hash)
            .and_then(|path| std::fs::read_to_string(path).ok())
            .and_then(|text| decode_report(&text).ok());
        match report {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a report under a scenario hash (atomic temp-file + rename).
    ///
    /// # Errors
    ///
    /// Returns the failing path and I/O error; callers surface this once
    /// via telemetry rather than per-row.
    pub fn store(&self, hash: &str, report: &RunReport) -> Result<(), (PathBuf, std::io::Error)> {
        let Some(path) = self.path_for(hash) else {
            return Ok(());
        };
        // vr-lint::allow(panic-in-lib, reason = "path_for joins under the cache root, so a parent always exists")
        let dir = path.parent().expect("cache path always has a parent");
        std::fs::create_dir_all(dir).map_err(|e| (dir.to_path_buf(), e))?;
        // Unique temp name per process *and* per in-process writer, so
        // concurrent stores never clobber each other's half-written file.
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!("{hash}.tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, encode_report(report)).map_err(|e| (tmp.clone(), e))?;
        std::fs::rename(&tmp, &path).map_err(|e| (path.clone(), e))
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Resolves the cache directory from the environment: `VR_CACHE_DIR` if
/// set, else [`ResultCache::DEFAULT_DIR`].
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("VR_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(ResultCache::DEFAULT_DIR).to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vr_cluster::params::ClusterParams;
    use vr_cluster::units::Bytes;
    use vrecon::{PolicyKind, SimConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vr-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_report() -> RunReport {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(2);
        let trace = vr_workload::synth::blocking_scenario(2, Bytes::from_mb(64));
        crate::Scenario::new(
            SimConfig::new(cluster, PolicyKind::GLoadSharing).with_seed(3),
            Arc::new(trace),
        )
        .run()
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::at(&dir);
        let report = small_report();
        assert!(cache.lookup("abc").is_none());
        cache.store("abc", &report).unwrap();
        assert_eq!(cache.lookup("abc").unwrap(), report);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // No stray temp files survive the atomic write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("abc.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_count_as_misses() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::at(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
        assert!(cache.lookup("bad").is_none());
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits_and_never_writes() {
        let cache = ResultCache::disabled();
        let report = small_report();
        cache.store("xyz", &report).unwrap();
        assert!(cache.lookup("xyz").is_none());
        assert!(!cache.is_enabled());
        assert_eq!(cache.path_for("xyz"), None);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
    }
}
