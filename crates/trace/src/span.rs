//! Span derivation: pairing open/close records into intervals.

use std::collections::BTreeMap;

use vr_simcore::time::SimTime;

use crate::TraceRecord;

/// A derived interval in the run: a job's whole lifecycle, a wait in the
/// pending queue, a transit (migration / special-service transfer), a
/// suspension, or a reservation episode on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span family: `"job"`, `"pending"`, `"transit"`, `"suspend"`, or
    /// `"reservation"`.
    pub name: &'static str,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed (the run's final time for still-open spans).
    pub end: SimTime,
    /// Job the span belongs to (`None` for reservation episodes).
    pub job: Option<u64>,
    /// Node the span resolved on, when known.
    pub node: Option<u64>,
}

/// Derives spans from a time-ordered record stream.
///
/// Pairing rules (all keyed per job unless noted):
/// - `"job"`: first `submitted` → `completed`
/// - `"pending"`: `blocked` / `requeued` → next `placed`
/// - `"transit"`: `transit-started` / `migration-started` /
///   `special-service-started` → next `placed` or `migration-failed`
/// - `"suspend"`: `suspended` → `resumed`
/// - `"reservation"` (per node): `reservation-began` →
///   `reservation-released`, LIFO when nested
///
/// Spans still open when the stream ends are closed at `final_time`, so a
/// horizon-truncated run yields spans ending exactly at the horizon. The
/// result is sorted by `(start, end, name, job, node)` — a canonical order
/// independent of pairing bookkeeping.
pub fn derive_spans(records: &[TraceRecord], final_time: SimTime) -> Vec<TraceSpan> {
    let mut spans = Vec::new();
    let mut job_open: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut pending_open: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut transit_open: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut suspend_open: BTreeMap<u64, SimTime> = BTreeMap::new();
    let mut reservation_open: BTreeMap<u64, Vec<SimTime>> = BTreeMap::new();

    let close = |spans: &mut Vec<TraceSpan>,
                 name: &'static str,
                 start: SimTime,
                 end: SimTime,
                 job: Option<u64>,
                 node: Option<u64>| {
        spans.push(TraceSpan {
            name,
            start,
            end: end.max(start),
            job,
            node,
        });
    };

    for r in records {
        match (r.kind, r.job, r.node) {
            ("submitted", Some(j), _) => {
                job_open.entry(j).or_insert(r.time);
            }
            ("completed", Some(j), node) => {
                if let Some(start) = job_open.remove(&j) {
                    close(&mut spans, "job", start, r.time, Some(j), node);
                }
            }
            ("blocked" | "requeued", Some(j), _) => {
                pending_open.entry(j).or_insert(r.time);
            }
            ("transit-started" | "migration-started" | "special-service-started", Some(j), _) => {
                transit_open.entry(j).or_insert(r.time);
            }
            ("placed", Some(j), node) => {
                if let Some(start) = pending_open.remove(&j) {
                    close(&mut spans, "pending", start, r.time, Some(j), node);
                }
                if let Some(start) = transit_open.remove(&j) {
                    close(&mut spans, "transit", start, r.time, Some(j), node);
                }
            }
            ("migration-failed", Some(j), node) => {
                if let Some(start) = transit_open.remove(&j) {
                    close(&mut spans, "transit", start, r.time, Some(j), node);
                }
            }
            ("suspended", Some(j), _) => {
                suspend_open.entry(j).or_insert(r.time);
            }
            ("resumed", Some(j), node) => {
                if let Some(start) = suspend_open.remove(&j) {
                    close(&mut spans, "suspend", start, r.time, Some(j), node);
                }
            }
            ("reservation-began", _, Some(n)) => {
                reservation_open.entry(n).or_default().push(r.time);
            }
            ("reservation-released", _, Some(n)) => {
                if let Some(start) = reservation_open.entry(n).or_default().pop() {
                    close(&mut spans, "reservation", start, r.time, None, Some(n));
                }
            }
            _ => {}
        }
    }

    // Close everything still open at the end of the run, in key order.
    for (j, start) in job_open {
        close(&mut spans, "job", start, final_time, Some(j), None);
    }
    for (j, start) in pending_open {
        close(&mut spans, "pending", start, final_time, Some(j), None);
    }
    for (j, start) in transit_open {
        close(&mut spans, "transit", start, final_time, Some(j), None);
    }
    for (j, start) in suspend_open {
        close(&mut spans, "suspend", start, final_time, Some(j), None);
    }
    for (n, starts) in reservation_open {
        for start in starts {
            close(&mut spans, "reservation", start, final_time, None, Some(n));
        }
    }

    spans.sort_by_key(|s| (s.start, s.end, s.name, s.job, s.node));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(secs: u64, kind: &'static str, job: Option<u64>, node: Option<u64>) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_secs(secs),
            kind,
            job,
            node,
        }
    }

    #[test]
    fn job_lifecycle_and_pending_pair_up() {
        let records = [
            rec(1, "submitted", Some(7), None),
            rec(1, "blocked", Some(7), None),
            rec(3, "placed", Some(7), Some(2)),
            rec(9, "completed", Some(7), Some(2)),
        ];
        let spans = derive_spans(&records, SimTime::from_secs(100));
        assert_eq!(
            spans,
            vec![
                TraceSpan {
                    name: "pending",
                    start: SimTime::from_secs(1),
                    end: SimTime::from_secs(3),
                    job: Some(7),
                    node: Some(2),
                },
                TraceSpan {
                    name: "job",
                    start: SimTime::from_secs(1),
                    end: SimTime::from_secs(9),
                    job: Some(7),
                    node: Some(2),
                },
            ]
        );
    }

    #[test]
    fn open_spans_close_at_final_time() {
        let records = [
            rec(1, "submitted", Some(1), None),
            rec(2, "reservation-began", None, Some(4)),
        ];
        let spans = derive_spans(&records, SimTime::from_secs(5));
        assert_eq!(spans.len(), 2);
        assert!(
            spans.iter().all(|s| s.end == SimTime::from_secs(5)),
            "{spans:?}"
        );
    }

    #[test]
    fn transit_closes_on_placement_or_failure() {
        let records = [
            rec(1, "migration-started", Some(1), Some(0)),
            rec(2, "migration-failed", Some(1), Some(3)),
            rec(4, "transit-started", Some(2), Some(0)),
            rec(6, "placed", Some(2), Some(1)),
        ];
        let spans = derive_spans(&records, SimTime::from_secs(10));
        let names: Vec<_> = spans.iter().map(|s| (s.name, s.job)).collect();
        assert_eq!(
            names,
            vec![("transit", Some(1)), ("transit", Some(2))],
            "{spans:?}"
        );
        assert_eq!(spans[0].end, SimTime::from_secs(2));
        assert_eq!(spans[1].end, SimTime::from_secs(6));
    }

    #[test]
    fn nested_reservations_pair_lifo() {
        let records = [
            rec(1, "reservation-began", None, Some(2)),
            rec(2, "reservation-began", None, Some(2)),
            rec(3, "reservation-released", None, Some(2)),
            rec(5, "reservation-released", None, Some(2)),
        ];
        let spans = derive_spans(&records, SimTime::from_secs(9));
        let intervals: Vec<_> = spans.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(
            intervals,
            vec![
                (SimTime::from_secs(1), SimTime::from_secs(5)),
                (SimTime::from_secs(2), SimTime::from_secs(3)),
            ]
        );
    }
}
