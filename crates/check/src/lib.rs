//! # vr-check — independent correctness checking for the simulator
//!
//! Three layers of defence against a *plausibly wrong* simulator:
//!
//! * [`oracle`] — a deliberately naive re-implementation of the paper's
//!   memory/queueing model ([`run_oracle`]): no event queue, no load index,
//!   no reservation state machine — every structure is a linear-scanned
//!   `Vec`. Differential comparison against the engine's
//!   [`vrecon::RunReport`] (via [`vrecon::compare_reports`]) catches bugs
//!   that live in the engine's clever data structures.
//! * [`props`] — metamorphic properties: transformations of a scenario with
//!   a provable effect on the report (arrival-burst permutation invariance,
//!   CPU-speed scaling, zero-fault-plan equivalence, reconfiguration
//!   blocking counts). These catch bugs that both implementations share.
//! * [`fuzz`] — a deterministic scenario fuzzer with greedy shrinking
//!   ([`run_fuzz`]): seeded random scenarios are run through engine,
//!   oracle, and invariant auditor; any divergence is shrunk to a minimal
//!   replayable reproducer spec.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fuzz;
pub mod oracle;
pub mod props;

pub use fuzz::{run_fuzz, CheckScenario, FuzzOptions, FuzzOutcome, WIRE_FORMAT_VERSION};
pub use oracle::{run_oracle, OracleSkew};
