//! The result of one simulation run.

use serde::{Deserialize, Serialize};
use vr_cluster::job::RunningJob;
use vr_cluster::node::NodeCounters;
use vr_faults::FaultCounters;
use vr_metrics::sampler::ClusterGauges;
use vr_metrics::summary::WorkloadSummary;
use vr_simcore::engine::RunStats;
use vr_simcore::time::SimTime;

use crate::events::EventLog;
use crate::policy::PolicyKind;
use crate::reservation::ReservationStats;

/// Scheduler-level counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerCounters {
    /// Jobs placed on their home workstation at first attempt.
    pub local_submissions: u64,
    /// Jobs remote-submitted (at first attempt or after pending).
    pub remote_submissions: u64,
    /// Jobs that entered the cluster pending queue at least once.
    pub blocked_submissions: u64,
    /// Fault-driven preemptive migrations (not counting reserved-service
    /// migrations).
    pub overload_migrations: u64,
    /// Migrations into reserved workstations (special service).
    pub reserved_migrations: u64,
    /// Blocking episodes detected: counted when a node newly enters the
    /// blocked state (edge-triggered), not on every scan tick it stays
    /// there.
    pub blocking_detections: u64,
    /// Placements bounced by a node because the load index was stale.
    pub stale_rejections: u64,
    /// Jobs suspended (swapped out) by the Suspend-Largest strawman.
    pub suspensions: u64,
    /// Suspended jobs resumed.
    pub resumes: u64,
    /// Malleable jobs grown to a wider slot width.
    pub grows: u64,
    /// Malleable jobs shrunk to a narrower slot width.
    pub shrinks: u64,
}

/// Everything measured during one run.
///
/// Derives `PartialEq` so tests can assert the determinism contract
/// directly: same config, same seed, same fault plan ⇒ equal reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The trace that was executed.
    pub trace_name: String,
    /// The policy that scheduled it.
    pub policy: PolicyKind,
    /// RNG seed of the run.
    pub seed: u64,
    /// Every job with its final breakdown, ordered by id.
    pub jobs: Vec<RunningJob>,
    /// Aggregated §4/§5 measurements.
    pub summary: WorkloadSummary,
    /// Periodic cluster gauges (idle memory, balance skew, …).
    pub gauges: ClusterGauges,
    /// Scheduler counters.
    pub counters: SchedulerCounters,
    /// Reservation activity (all zeros for non-reconfiguring policies).
    pub reservations: ReservationStats,
    /// Per-node utilization counters.
    pub node_counters: Vec<NodeCounters>,
    /// The full scheduler event log (submissions, placements, migrations,
    /// reservations, completions).
    pub events: EventLog,
    /// When the last job completed (the makespan).
    pub finished_at: SimTime,
    /// Engine counters for the run. `run_stats.drained == false` means the
    /// run hit the `max_sim_time` horizon with events still queued — its
    /// measurements are truncated, not converged, and every consumer
    /// (CLI, experiment binaries) must flag it loudly.
    pub run_stats: RunStats,
    /// Jobs that had not completed when the safety horizon was hit.
    pub unfinished_jobs: usize,
    /// Injected faults and the scheduler's recovery actions (all zeros when
    /// the run had no fault plan).
    pub faults: FaultCounters,
    /// Invariant violations found by the auditor (empty when auditing was
    /// off — or, as it should be, when it found nothing).
    pub audit_violations: Vec<String>,
}

impl RunReport {
    /// The paper's primary metric: mean slowdown over all jobs.
    pub fn avg_slowdown(&self) -> f64 {
        self.summary.avg_slowdown
    }

    /// Total execution time `T_exe` (seconds) summed over all jobs.
    pub fn total_execution_secs(&self) -> f64 {
        self.summary.total_execution_secs()
    }

    /// Total queuing time `T_que` (seconds) summed over all jobs.
    pub fn total_queue_secs(&self) -> f64 {
        self.summary.total_queue_secs()
    }

    /// Average idle memory volume (MB) over the run.
    pub fn avg_idle_memory_mb(&self) -> f64 {
        self.gauges.avg_idle_memory_mb()
    }

    /// Average job balance skew over the run.
    pub fn avg_balance_skew(&self) -> f64 {
        self.gauges.avg_balance_skew()
    }

    /// `true` if every job completed.
    pub fn all_completed(&self) -> bool {
        self.unfinished_jobs == 0
    }

    /// Per-program mean slowdowns, ordered by program name — the paper's
    /// SRPT argument predicts small programs benefit most from V-R while
    /// large ones are still treated fairly, which this lets callers check.
    pub fn slowdown_by_program(&self) -> Vec<(String, f64, usize)> {
        let mut acc: std::collections::BTreeMap<&str, (f64, usize)> =
            std::collections::BTreeMap::new();
        for job in &self.jobs {
            let entry = acc.entry(job.spec.name.as_str()).or_insert((0.0, 0));
            entry.0 += job.slowdown();
            entry.1 += 1;
        }
        acc.into_iter()
            .map(|(name, (sum, n))| (name.to_owned(), sum / n as f64, n))
            .collect()
    }

    /// Total I/O operations issued across all workstations.
    pub fn total_io_ops(&self) -> f64 {
        self.node_counters.iter().map(|c| c.io_ops).sum()
    }

    /// Per-workstation utilization over the run.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate report (no nodes or zero makespan).
    pub fn utilization(&self) -> vr_metrics::utilization::UtilizationSummary {
        vr_metrics::utilization::UtilizationSummary::from_counters(
            &self.node_counters,
            self.finished_at,
        )
    }

    /// Verifies the §5 identity for every completed job: wall-clock time
    /// (completion − submission) equals `cpu + page + queue + migration`
    /// within `tolerance_secs`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating job.
    pub fn check_breakdown_identity(&self, tolerance_secs: f64) -> Result<(), String> {
        for job in &self.jobs {
            let Some(done) = job.completed_at else {
                continue;
            };
            let elapsed = done.saturating_since(job.spec.submit).as_secs_f64();
            let wall = job.breakdown.wall();
            if (elapsed - wall).abs() > tolerance_secs {
                return Err(format!(
                    "{}: elapsed {elapsed:.6}s != breakdown {wall:.6}s",
                    job.id()
                ));
            }
        }
        Ok(())
    }

    /// One-paragraph human summary.
    ///
    /// ```
    /// # use vrecon::report::RunReport;
    /// # fn demo(report: &RunReport) {
    /// println!("{}", report.brief());
    /// # }
    /// ```
    pub fn brief(&self) -> String {
        format!(
            "{} under {}: {} jobs, avg slowdown {:.2}, T_exe {:.0}s, T_que {:.0}s, \
             avg idle mem {:.0}MB, skew {:.2}, {} migrations, {} reservations",
            self.trace_name,
            self.policy,
            self.summary.jobs,
            self.avg_slowdown(),
            self.total_execution_secs(),
            self.total_queue_secs(),
            self.avg_idle_memory_mb(),
            self.avg_balance_skew(),
            self.counters.overload_migrations + self.counters.reserved_migrations,
            self.reservations.started,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob, TimeBreakdown};
    use vr_cluster::units::Bytes;
    use vr_simcore::time::{SimSpan, SimTime};

    fn job(id: u64, name: &str, cpu: f64, queue: f64) -> RunningJob {
        let mut j = RunningJob::new(JobSpec {
            id: JobId(id),
            name: name.to_owned(),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs_f64(cpu),
            memory: MemoryProfile::constant(Bytes::from_mb(10)),
            io_rate: 0.0,
            malleable: None,
        });
        j.breakdown = TimeBreakdown {
            cpu,
            page: 0.0,
            queue,
            migration: 0.0,
        };
        j.completed_at = Some(SimTime::from_secs_f64(cpu + queue));
        j
    }

    fn report(jobs: Vec<RunningJob>) -> RunReport {
        let summary = vr_metrics::summary::WorkloadSummary::of_jobs(jobs.iter());
        RunReport {
            trace_name: "test".into(),
            policy: crate::policy::PolicyKind::GLoadSharing,
            seed: 0,
            summary,
            gauges: Default::default(),
            counters: Default::default(),
            reservations: Default::default(),
            node_counters: vec![vr_cluster::node::NodeCounters {
                delivered_cpu: 50.0,
                page_stall: 5.0,
                admitted: 2,
                completed: 2,
                migrated_out: 0,
                io_ops: 12.0,
            }],
            events: Default::default(),
            finished_at: SimTime::from_secs(100),
            run_stats: Default::default(),
            unfinished_jobs: 0,
            faults: Default::default(),
            audit_violations: Vec::new(),
            jobs,
        }
    }

    #[test]
    fn slowdown_by_program_groups_and_averages() {
        let r = report(vec![
            job(0, "a", 10.0, 10.0), // slowdown 2
            job(1, "a", 10.0, 30.0), // slowdown 4
            job(2, "b", 10.0, 0.0),  // slowdown 1
        ]);
        let by = r.slowdown_by_program();
        assert_eq!(by.len(), 2);
        assert_eq!(by[0].0, "a");
        assert!((by[0].1 - 3.0).abs() < 1e-12);
        assert_eq!(by[0].2, 2);
        assert_eq!(by[1], ("b".to_owned(), 1.0, 1));
    }

    #[test]
    fn utilization_and_io_roll_up() {
        let r = report(vec![job(0, "a", 10.0, 0.0)]);
        assert!((r.total_io_ops() - 12.0).abs() < 1e-12);
        let u = r.utilization();
        assert_eq!(u.nodes.len(), 1);
        assert!((u.nodes[0].cpu_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn breakdown_identity_detects_mismatch() {
        let mut bad = job(0, "a", 10.0, 10.0);
        bad.completed_at = Some(SimTime::from_secs(99)); // wall says 20
        let r = report(vec![bad]);
        assert!(r.check_breakdown_identity(0.01).is_err());
        let good = report(vec![job(0, "a", 10.0, 10.0)]);
        good.check_breakdown_identity(0.01).unwrap();
    }

    #[test]
    fn brief_mentions_the_essentials() {
        let r = report(vec![job(0, "a", 10.0, 10.0)]);
        let text = r.brief();
        assert!(text.contains("test"));
        assert!(text.contains("G-Loadsharing"));
        assert!(text.contains("slowdown"));
    }
}
