//! Property-based tests of the simulation substrate against reference
//! models.

use proptest::prelude::*;
use vr_simcore::event::EventQueue;
use vr_simcore::rng::SimRng;
use vr_simcore::series::TimeSeries;
use vr_simcore::stats::{percentile, OnlineStats};
use vr_simcore::time::{SimSpan, SimTime};

proptest! {
    /// The event queue pops in exactly the order a stable sort by
    /// (time, insertion index) would produce.
    #[test]
    fn queue_matches_stable_sort(times in prop::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        expected.sort(); // stable by (time, seq)
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_micros(), i))).collect();
        prop_assert_eq!(got, expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| q.schedule(SimTime::from_micros(*t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(h));
            } else {
                kept.push(i);
            }
        }
        prop_assert_eq!(q.len(), kept.len());
        let mut popped: Vec<usize> =
            std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// Model-based check: random interleavings of schedule/cancel/pop/peek
    /// behave exactly like a naive sorted-`Vec` reference model, and the
    /// compaction policy keeps dead heap entries bounded throughout.
    #[test]
    fn queue_matches_vec_model(ops in prop::collection::vec((0u8..4, 0u64..500u64), 1..300)) {
        let mut q = EventQueue::new();
        // Reference model: live events as (time, seq, payload), scanned
        // linearly for the (time, seq) minimum. Handles ever issued are kept
        // so cancel can target fired/cancelled ones too.
        let mut model: Vec<(u64, u64, usize)> = Vec::new();
        let mut issued = Vec::new();
        let mut next_payload = 0usize;
        for (op, arg) in ops {
            match op {
                0 => {
                    let h = q.schedule(SimTime::from_micros(arg), next_payload);
                    model.push((arg, issued.len() as u64, next_payload));
                    issued.push(h);
                    next_payload += 1;
                }
                1 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let pick = arg as usize % issued.len();
                    let seq = pick as u64;
                    let live = model.iter().any(|&(_, s, _)| s == seq);
                    prop_assert_eq!(q.cancel(issued[pick]), live);
                    model.retain(|&(_, s, _)| s != seq);
                }
                2 => {
                    let expected = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, _)| i);
                    let expected = expected.map(|i| {
                        let (t, _, p) = model.remove(i);
                        (SimTime::from_micros(t), p)
                    });
                    prop_assert_eq!(q.pop(), expected);
                }
                _ => {
                    let expected = model.iter().map(|&(t, s, _)| (t, s)).min().map(|(t, _)| {
                        SimTime::from_micros(t)
                    });
                    prop_assert_eq!(q.peek_time(), expected);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
            prop_assert!(
                q.heap_len() <= model.len() + model.len() / 2 + 1,
                "heap grew to {} entries for {} live events",
                q.heap_len(),
                model.len()
            );
        }
        // Drain: whatever is left pops in exact (time, seq) order.
        model.sort_by_key(|&(t, s, _)| (t, s));
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_micros(), p))).collect();
        let expected: Vec<(u64, usize)> = model.iter().map(|&(t, _, p)| (t, p)).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Calendar-specific model check: scheduled times span many bucket
    /// rotations of the calendar queue and repeat exactly, so one sequence
    /// of operations drives equal-key FIFO ordering, same-bucket slot
    /// collisions (times one full rotation apart), cursor rewinds
    /// (scheduling earlier than the last pop), the sparse far-future jump,
    /// and compaction — all against the naive sorted-Vec model.
    #[test]
    fn calendar_queue_matches_vec_model_across_rotations(
        ops in prop::collection::vec((0u8..4, 0u64..u64::MAX), 1..400)
    ) {
        // Slot width and rotation period of the calendar layout (1024
        // buckets of 2^20 µs); exercised as plain times here — the queue's
        // observable contract stays pure (time, seq) ordering.
        const W: u64 = 1 << 20;
        const ROT: u64 = 1024 * W;
        const TIMES: [u64; 12] = [
            0,
            5,
            5, // exact duplicate: FIFO tie-break
            W - 1,
            W, // adjacent slots
            3 * W + 7,
            ROT + 5,     // same bucket as 5, one rotation later
            ROT + 5,     // duplicate of the collision too
            2 * ROT + 3 * W + 7, // same bucket as 3W+7, two rotations later
            7 * ROT + 1, // sparse far future: forces the min-scan jump
            19 * ROT + W + 9,
            19 * ROT + W + 9,
        ];
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64, usize)> = Vec::new();
        let mut issued = Vec::new();
        let mut next_payload = 0usize;
        for (op, arg) in ops {
            match op {
                0 => {
                    let time = TIMES[(arg % TIMES.len() as u64) as usize];
                    let h = q.schedule(SimTime::from_micros(time), next_payload);
                    model.push((time, issued.len() as u64, next_payload));
                    issued.push(h);
                    next_payload += 1;
                }
                1 => {
                    if issued.is_empty() {
                        continue;
                    }
                    let pick = (arg % issued.len() as u64) as usize;
                    let seq = pick as u64;
                    let live = model.iter().any(|&(_, s, _)| s == seq);
                    prop_assert_eq!(q.cancel(issued[pick]), live);
                    model.retain(|&(_, s, _)| s != seq);
                }
                2 => {
                    let expected = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(t, s, _))| (t, s))
                        .map(|(i, _)| i);
                    let expected = expected.map(|i| {
                        let (t, _, p) = model.remove(i);
                        (SimTime::from_micros(t), p)
                    });
                    prop_assert_eq!(q.pop(), expected);
                }
                _ => {
                    let expected = model.iter().map(|&(t, s, _)| (t, s)).min().map(|(t, _)| {
                        SimTime::from_micros(t)
                    });
                    prop_assert_eq!(q.peek_time(), expected);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert!(
                q.heap_len() <= model.len() + model.len() / 2 + 1,
                "store grew to {} entries for {} live events",
                q.heap_len(),
                model.len()
            );
        }
        model.sort_by_key(|&(t, s, _)| (t, s));
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_micros(), p))).collect();
        let expected: Vec<(u64, usize)> = model.iter().map(|&(t, _, p)| (t, p)).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Welford statistics agree with the naive two-pass computation.
    #[test]
    fn welford_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let acc: OnlineStats = values.iter().copied().collect();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.population_variance() - var).abs() <= 1e-4 * (1.0 + var));
        prop_assert_eq!(acc.count(), values.len() as u64);
    }

    /// Merging arbitrary splits equals sequential accumulation.
    #[test]
    fn welford_merge_is_associative(
        values in prop::collection::vec(-1e3f64..1e3, 2..200),
        split in 0usize..200,
    ) {
        let split = split % values.len();
        let sequential: OnlineStats = values.iter().copied().collect();
        let mut left: OnlineStats = values[..split].iter().copied().collect();
        let right: OnlineStats = values[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), sequential.count());
        prop_assert!((left.mean() - sequential.mean()).abs() < 1e-9);
        prop_assert!(
            (left.population_variance() - sequential.population_variance()).abs() < 1e-6
        );
    }

    /// Percentiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(mut values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let ps: Vec<f64> = qs.iter().map(|q| percentile(&values, *q)).collect();
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        prop_assert!(ps[0] >= values[0] - 1e-12);
        prop_assert!(*ps.last().unwrap() <= values[values.len() - 1] + 1e-12);
    }

    /// Resampling at the original interval reproduces the sample average,
    /// and any resampling stays within the series' min/max.
    #[test]
    fn resample_is_bounded(values in prop::collection::vec(0.0f64..1e6, 2..200)) {
        let series: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, v)| (SimTime::from_secs(i as u64), *v))
            .collect();
        let identical = series.resample(SimSpan::from_secs(1));
        prop_assert!((identical.sample_average() - series.sample_average()).abs() < 1e-9);
        let coarse = series.resample(SimSpan::from_secs(7));
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(coarse.sample_average() >= lo - 1e-9);
        prop_assert!(coarse.sample_average() <= hi + 1e-9);
    }

    /// Forked RNG streams are reproducible and uncorrelated with their
    /// siblings.
    #[test]
    fn rng_forks_reproduce(seed in any::<u64>(), stream in 0u64..1_000) {
        let parent = SimRng::seed_from(seed);
        let mut a = parent.fork(stream);
        let mut b = parent.fork(stream);
        let mut c = parent.fork(stream.wrapping_add(1));
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }

    /// Jittered values stay within the configured band.
    #[test]
    fn jitter_stays_in_band(
        seed in any::<u64>(),
        value in 1e-3f64..1e6,
        spread in 0.0f64..0.99,
    ) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            let v = rng.jitter(value, spread);
            prop_assert!(v >= value * (1.0 - spread) - 1e-9);
            prop_assert!(v <= value * (1.0 + spread) + 1e-9);
        }
    }
}
