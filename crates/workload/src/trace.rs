//! Workload traces: the paper's ten traces and a generic builder.
//!
//! §3.3.2 collects five traces per workload group at five lognormal arrival
//! intensities. [`TraceLevel`] encodes the five `(σ = μ, jobs, horizon)`
//! triples; [`spec_trace`] and [`app_trace`] regenerate
//! `SPEC-Trace-1..5` and `App-Trace-1..5`. "The jobs in each trace were
//! randomly submitted to 32 workstations" — program selection is uniform over
//! the group's catalog, with ±20 % jitter on lifetime and working set to
//! model input variation.

use serde::{Deserialize, Serialize};
use vr_cluster::job::{JobId, JobSpec};
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};

use crate::arrival::LognormalArrivals;
use crate::catalog::ProgramSpec;

/// Default per-job jitter applied to lifetimes and working sets.
pub const DEFAULT_JITTER: f64 = 0.2;

/// One of the paper's five arrival intensities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Trace-1: σ = μ = 4.0, 359 jobs in 3,586 s ("light").
    Light,
    /// Trace-2: σ = μ = 3.7, 448 jobs in 3,589 s ("moderate").
    Moderate,
    /// Trace-3: σ = μ = 3.0, 578 jobs in 3,581 s ("normal").
    Normal,
    /// Trace-4: σ = μ = 2.0, 684 jobs in 3,585 s ("moderately intensive").
    ModeratelyIntensive,
    /// Trace-5: σ = μ = 1.5, 777 jobs in 3,582 s ("highly intensive").
    HighlyIntensive,
}

impl TraceLevel {
    /// All five levels in paper order.
    pub const ALL: [TraceLevel; 5] = [
        TraceLevel::Light,
        TraceLevel::Moderate,
        TraceLevel::Normal,
        TraceLevel::ModeratelyIntensive,
        TraceLevel::HighlyIntensive,
    ];

    /// The paper's trace number (1–5).
    pub fn number(self) -> usize {
        match self {
            TraceLevel::Light => 1,
            TraceLevel::Moderate => 2,
            TraceLevel::Normal => 3,
            TraceLevel::ModeratelyIntensive => 4,
            TraceLevel::HighlyIntensive => 5,
        }
    }

    /// The shared σ = μ parameter of the lognormal rate function.
    pub fn sigma_mu(self) -> f64 {
        match self {
            TraceLevel::Light => 4.0,
            TraceLevel::Moderate => 3.7,
            TraceLevel::Normal => 3.0,
            TraceLevel::ModeratelyIntensive => 2.0,
            TraceLevel::HighlyIntensive => 1.5,
        }
    }

    /// Number of submitted jobs.
    pub fn jobs(self) -> usize {
        match self {
            TraceLevel::Light => 359,
            TraceLevel::Moderate => 448,
            TraceLevel::Normal => 578,
            TraceLevel::ModeratelyIntensive => 684,
            TraceLevel::HighlyIntensive => 777,
        }
    }

    /// Submission window.
    pub fn horizon(self) -> SimSpan {
        let secs = match self {
            TraceLevel::Light => 3586,
            TraceLevel::Moderate => 3589,
            TraceLevel::Normal => 3581,
            TraceLevel::ModeratelyIntensive => 3585,
            TraceLevel::HighlyIntensive => 3582,
        };
        SimSpan::from_secs(secs)
    }

    /// The arrival process for this level.
    pub fn arrivals(self) -> LognormalArrivals {
        LognormalArrivals {
            sigma: self.sigma_mu(),
            mu: self.sigma_mu(),
            count: self.jobs(),
            horizon: self.horizon(),
        }
    }
}

/// A fully instantiated workload trace: a named, time-ordered list of jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Trace name (e.g. `"SPEC-Trace-3"`).
    pub name: String,
    /// Jobs ordered by submission time, with sequential ids.
    pub jobs: Vec<JobSpec>,
}

impl Trace {
    /// Builds a trace: one job per arrival instant, program drawn uniformly
    /// from `catalog`, with `jitter` variation.
    ///
    /// # Panics
    ///
    /// Panics if `catalog` is empty or `jitter` is outside `[0, 1)`.
    pub fn build(
        name: impl Into<String>,
        catalog: &[ProgramSpec],
        arrivals: &[SimTime],
        rng: &mut SimRng,
        jitter: f64,
    ) -> Trace {
        assert!(!catalog.is_empty(), "trace needs a non-empty catalog");
        let jobs = arrivals
            .iter()
            .enumerate()
            .map(|(i, &submit)| {
                let program = rng.choose(catalog).clone();
                program.instantiate(JobId(i as u64), submit, rng, jitter)
            })
            .collect();
        Trace {
            name: name.into(),
            jobs,
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The last submission instant ([`SimTime::ZERO`] for an empty trace).
    pub fn last_submission(&self) -> SimTime {
        self.jobs.last().map(|j| j.submit).unwrap_or(SimTime::ZERO)
    }

    /// Sum of all dedicated CPU work in the trace, in seconds.
    pub fn total_cpu_work_secs(&self) -> f64 {
        self.jobs.iter().map(|j| j.cpu_work.as_secs_f64()).sum()
    }

    /// Checks the trace's structural invariants (ordering, id sequence).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, job) in self.jobs.iter().enumerate() {
            if job.id != JobId(i as u64) {
                return Err(format!("job {i} has id {}", job.id));
            }
            if i > 0 && job.submit < self.jobs[i - 1].submit {
                return Err(format!("job {i} submitted before its predecessor"));
            }
            if job.cpu_work.is_zero() {
                return Err(format!("job {i} has zero CPU work"));
            }
        }
        Ok(())
    }
}

/// Lifetime scale applied to the Table 1 programs when building SPEC
/// traces.
///
/// Replaying Table 1's dedicated lifetimes (mean ≈ 1,465 s) against the
/// paper's submission windows would demand ≈ 7× the CPU capacity of the
/// 32-node cluster at *every* arrival intensity — the five traces would all
/// sit in deep chronic overload, with no contrast between "light" and
/// "highly intensive". The paper's own testbed evidently spanned the
/// interesting range, so the catalogs are scaled to put Trace-3 ("normal")
/// near saturation; relative lifetimes and the memory-demand/lifetime
/// correlation are preserved. See `DESIGN.md` §2.
pub const SPEC_LIFETIME_SCALE: f64 = 0.15;

/// Lifetime scale applied to the Table 2 programs when building App traces
/// (see [`SPEC_LIFETIME_SCALE`]).
pub const APP_LIFETIME_SCALE: f64 = 0.50;

fn scaled(programs: Vec<ProgramSpec>, scale: f64) -> Vec<ProgramSpec> {
    programs.iter().map(|p| p.scale_lifetime(scale)).collect()
}

/// Regenerates `SPEC-Trace-<n>` (workload group 1 on cluster 1) at the
/// default [`SPEC_LIFETIME_SCALE`].
pub fn spec_trace(level: TraceLevel, rng: &mut SimRng) -> Trace {
    spec_trace_scaled(level, rng, SPEC_LIFETIME_SCALE)
}

/// Regenerates `SPEC-Trace-<n>` with an explicit lifetime scale (1.0 =
/// Table 1 verbatim).
///
/// # Panics
///
/// Panics if `scale` is not a positive finite number.
pub fn spec_trace_scaled(level: TraceLevel, rng: &mut SimRng, scale: f64) -> Trace {
    let arrivals = level.arrivals().generate(rng);
    Trace::build(
        format!("SPEC-Trace-{}", level.number()),
        &scaled(crate::spec2000::programs(), scale),
        &arrivals,
        rng,
        DEFAULT_JITTER,
    )
}

/// Regenerates `App-Trace-<n>` (workload group 2 on cluster 2) at the
/// default [`APP_LIFETIME_SCALE`].
pub fn app_trace(level: TraceLevel, rng: &mut SimRng) -> Trace {
    app_trace_scaled(level, rng, APP_LIFETIME_SCALE)
}

/// Regenerates `App-Trace-<n>` with an explicit lifetime scale (1.0 =
/// Table 2 verbatim).
///
/// # Panics
///
/// Panics if `scale` is not a positive finite number.
pub fn app_trace_scaled(level: TraceLevel, rng: &mut SimRng, scale: f64) -> Trace {
    let arrivals = level.arrivals().generate(rng);
    Trace::build(
        format!("App-Trace-{}", level.number()),
        &scaled(crate::apps::programs(), scale),
        &arrivals,
        rng,
        DEFAULT_JITTER,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_paper_parameters() {
        assert_eq!(TraceLevel::Light.jobs(), 359);
        assert_eq!(TraceLevel::Moderate.jobs(), 448);
        assert_eq!(TraceLevel::Normal.jobs(), 578);
        assert_eq!(TraceLevel::ModeratelyIntensive.jobs(), 684);
        assert_eq!(TraceLevel::HighlyIntensive.jobs(), 777);
        assert_eq!(TraceLevel::Light.sigma_mu(), 4.0);
        assert_eq!(TraceLevel::HighlyIntensive.sigma_mu(), 1.5);
        assert_eq!(TraceLevel::Normal.horizon(), SimSpan::from_secs(3581));
        assert_eq!(TraceLevel::ALL.len(), 5);
        for (i, l) in TraceLevel::ALL.iter().enumerate() {
            assert_eq!(l.number(), i + 1);
        }
    }

    #[test]
    fn spec_traces_have_paper_job_counts_and_validate() {
        for level in TraceLevel::ALL {
            let trace = spec_trace(level, &mut SimRng::seed_from(42));
            assert_eq!(trace.len(), level.jobs(), "{}", trace.name);
            trace.validate().unwrap();
            assert!(trace.last_submission() <= SimTime::ZERO + level.horizon());
        }
    }

    #[test]
    fn app_traces_have_paper_job_counts_and_validate() {
        for level in TraceLevel::ALL {
            let trace = app_trace(level, &mut SimRng::seed_from(42));
            assert_eq!(trace.len(), level.jobs(), "{}", trace.name);
            trace.validate().unwrap();
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(7));
        let b = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(7));
        let c = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn traces_mix_programs() {
        let trace = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(1));
        let mut names: Vec<&str> = trace.jobs.iter().map(|j| j.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() >= 5, "only {} distinct programs", names.len());
    }

    #[test]
    fn validate_catches_bad_ids() {
        let mut trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(1));
        trace.jobs[3].id = JobId(99);
        assert!(trace.validate().is_err());
    }

    #[test]
    fn validate_catches_unordered_submissions() {
        let mut trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(1));
        trace.jobs[5].submit = SimTime::ZERO;
        trace.jobs[4].submit = SimTime::from_secs(3000);
        assert!(trace.validate().is_err());
    }

    #[test]
    fn total_cpu_work_is_positive_and_scales_with_jobs() {
        let light = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(1));
        let heavy = spec_trace(TraceLevel::HighlyIntensive, &mut SimRng::seed_from(1));
        assert!(light.total_cpu_work_secs() > 0.0);
        assert!(heavy.total_cpu_work_secs() > light.total_cpu_work_secs());
    }

    #[test]
    #[should_panic(expected = "non-empty catalog")]
    fn empty_catalog_panics() {
        Trace::build("x", &[], &[SimTime::ZERO], &mut SimRng::seed_from(0), 0.0);
    }
}
