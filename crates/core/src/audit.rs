//! Invariant auditing: a cross-cutting checker that inspects the whole
//! simulation world after every event.
//!
//! The simulator's unit tests check behaviour at module boundaries; the
//! [`InvariantAuditor`] instead re-derives global properties from first
//! principles on every step of a real run — exactly the kind of check that
//! catches a scheduler bug the moment it corrupts state rather than when a
//! downstream number looks odd. Enabled via [`SimConfig::with_audit`]; the
//! violations (hopefully none) land in `RunReport::audit_violations`.
//!
//! Checked after every event:
//!
//! * **Job lifecycle** (from the scheduler event log): a job is submitted
//!   exactly once, placed only after submission, completed at most once and
//!   only after a placement, and never mentioned again after completion.
//! * **Per-node accounting**: the node's reported memory demand equals the
//!   recomputed sum of its resident jobs' working sets; the slot cap holds;
//!   a crashed node is empty and unreserved; the reservation flag agrees
//!   with the reservation manager (or a fault-stalled release).
//! * **Job conservation**: every arrived job is in exactly one place —
//!   resident, in a completion outbox, pending, in transit, suspended, or
//!   completed.
//! * **Reservation balance**: `started` equals the released/timed-out
//!   counts plus currently active reservations, and the active count obeys
//!   the configured cap.

use std::collections::BTreeMap;

use vr_cluster::job::JobId;
use vr_simcore::engine::EventHook;
use vr_simcore::time::SimTime;

use crate::config::SimConfig;
use crate::events::SchedulerEventKind;
use crate::sim::ClusterWorld;

/// Violations reported per run are capped so a systemic bug does not grow
/// the report without bound.
const MAX_VIOLATIONS: usize = 50;

#[derive(Debug, Default, Clone, Copy)]
struct Life {
    submitted: bool,
    placed: bool,
    completed: bool,
}

/// An [`EventHook`] that audits the cluster world's invariants after every
/// event (see the module docs for the list).
#[derive(Debug)]
pub struct InvariantAuditor {
    /// Cap on simultaneously reserved workstations, from the config.
    max_reserved: usize,
    /// Scheduler-log entries already processed by the lifecycle check.
    log_cursor: usize,
    lives: BTreeMap<JobId, Life>,
    violations: Vec<String>,
    truncated: bool,
}

impl InvariantAuditor {
    /// Creates an auditor for runs of `config`.
    pub fn new(config: &SimConfig) -> Self {
        InvariantAuditor {
            max_reserved: config.reservation.max_reserved(config.cluster.nodes.len()),
            log_cursor: 0,
            lives: BTreeMap::new(),
            violations: Vec::new(),
            truncated: false,
        }
    }

    /// `true` if every check passed so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Consumes the auditor, returning its violations.
    pub fn into_violations(self) -> Vec<String> {
        self.violations
    }

    /// Runs one final check (used after the engine stops, so horizon-end
    /// state is audited too).
    pub(crate) fn finish(&mut self, world: &ClusterWorld, now: SimTime) {
        self.check(world, now);
    }

    fn violation(&mut self, now: SimTime, message: String) {
        if self.violations.len() >= MAX_VIOLATIONS {
            if !self.truncated {
                self.truncated = true;
                self.violations
                    .push("... further violations suppressed".into());
            }
            return;
        }
        self.violations
            .push(format!("[{:.6}s] {message}", now.as_secs_f64()));
    }

    fn check(&mut self, world: &ClusterWorld, now: SimTime) {
        self.check_lifecycle(world, now);
        self.check_nodes(world, now);
        self.check_conservation(world, now);
        self.check_reservations(world, now);
    }

    /// Replays scheduler-log entries appended since the last check through
    /// a per-job state machine.
    fn check_lifecycle(&mut self, world: &ClusterWorld, now: SimTime) {
        use SchedulerEventKind as K;
        let entries = world.log.entries();
        for entry in &entries[self.log_cursor.min(entries.len())..] {
            let Some(job) = entry.job else { continue };
            let life = self.lives.entry(job).or_default();
            match entry.kind {
                K::Submitted => {
                    if life.submitted {
                        let msg = format!("{job} submitted twice");
                        self.violation(now, msg);
                        continue;
                    }
                    life.submitted = true;
                }
                K::Placed => {
                    if !life.submitted || life.completed {
                        let msg = format!("{job} placed while not live");
                        self.violation(now, msg);
                        continue;
                    }
                    life.placed = true;
                }
                K::Completed => {
                    if !life.placed {
                        let msg = format!("{job} completed without a placement");
                        self.violation(now, msg);
                        continue;
                    }
                    if life.completed {
                        let msg = format!("{job} completed twice");
                        self.violation(now, msg);
                        continue;
                    }
                    life.completed = true;
                }
                _ => {
                    if !life.submitted || life.completed {
                        let msg = format!("{job} saw '{}' while not live", entry.kind);
                        self.violation(now, msg);
                    }
                }
            }
        }
        self.log_cursor = entries.len();
    }

    fn check_nodes(&mut self, world: &ClusterWorld, now: SimTime) {
        for node in &world.nodes {
            let id = node.id();
            let recomputed: vr_cluster::units::Bytes =
                node.jobs().iter().map(|j| j.current_working_set()).sum();
            let reported = node.memory_usage().demand;
            if recomputed != reported {
                self.violation(
                    now,
                    format!("{id} reports demand {reported} but jobs sum to {recomputed}"),
                );
            }
            // Slot accounting is width-aware, against the *effective* cap:
            // fractional oversubscription raises it above the hardware slot
            // count, and malleable jobs occupy their current width.
            let cap = node.slot_cap();
            if node.used_slots() > cap {
                self.violation(
                    now,
                    format!(
                        "{id} commits width {} over its {cap}-slot cap",
                        node.used_slots()
                    ),
                );
            }
            if !node.is_up() {
                if node.active_jobs() > 0 {
                    self.violation(
                        now,
                        format!("{id} is down but still holds {} jobs", node.active_jobs()),
                    );
                }
                if node.is_reserved() {
                    self.violation(now, format!("{id} is down but flagged reserved"));
                }
            }
            let managed = world.reservations.is_reserved(id) || world.is_stalled(id);
            if node.is_reserved() != managed {
                self.violation(
                    now,
                    format!(
                        "{id} reservation flag {} disagrees with manager/stall state {}",
                        node.is_reserved(),
                        managed
                    ),
                );
            }
        }
    }

    fn check_conservation(&mut self, world: &ClusterWorld, now: SimTime) {
        let resident: usize = world.nodes.iter().map(|n| n.active_jobs()).sum();
        let outboxed: usize = world
            .nodes
            .iter()
            .map(|n| n.pending_completions().len())
            .sum();
        let accounted = resident
            + outboxed
            + world.pending.len()
            + world.in_transit.len()
            + world.suspended.len()
            + world.completed.len();
        if accounted != world.arrived {
            self.violation(
                now,
                format!(
                    "job conservation broken: {} arrived but {accounted} accounted \
                     ({resident} resident, {outboxed} outboxed, {} pending, \
                     {} in transit, {} suspended, {} completed)",
                    world.arrived,
                    world.pending.len(),
                    world.in_transit.len(),
                    world.suspended.len(),
                    world.completed.len(),
                ),
            );
        }
    }

    fn check_reservations(&mut self, world: &ClusterWorld, now: SimTime) {
        let stats = world.reservations.stats();
        let active = world.reservations.reserved_count() as u64;
        let closed = stats.released_after_service + stats.released_unused + stats.timed_out;
        if stats.started != closed + active {
            self.violation(
                now,
                format!(
                    "reservation balance broken: started {} != closed {closed} + active {active}",
                    stats.started
                ),
            );
        }
        if active as usize > self.max_reserved {
            self.violation(
                now,
                format!(
                    "{active} workstations reserved, above the cap of {}",
                    self.max_reserved
                ),
            );
        }
    }
}

impl EventHook<ClusterWorld> for InvariantAuditor {
    fn after_event(&mut self, world: &ClusterWorld, now: SimTime) {
        self.check(world, now);
    }
}
