//! Content-addressed on-disk result cache.
//!
//! Finished [`RunReport`]s are stored as `<dir>/<scenario-hash>.json`
//! using the deterministic encoding in [`vrecon::report_json`]. Because
//! the file name is a content hash of the *inputs* and the file body is a
//! pure function of those inputs (the simulator is deterministic), a hit
//! can simply be decoded and returned — no validation beyond the decode
//! itself is needed. A corrupt or stale-schema file counts as a miss, is
//! quarantined aside (`<hash>.json.corrupt`), bumps the
//! [`CacheStats::corrupt_entries`] counter, and is replaced by the next
//! store.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, so parallel workers (or parallel *processes*) racing on
//! the same key are harmless: both write identical bytes and the rename
//! is atomic either way.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use vrecon::{decode_report, encode_report, RunReport};

/// Hit/miss counters of one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that ran the simulator (including decode failures).
    pub misses: u64,
    /// Misses caused by an entry that *existed* but failed to decode
    /// (truncated write, disk corruption, stale schema). Each such entry is
    /// quarantined aside so subsequent lookups are clean misses; the next
    /// store overwrites the key with fresh bytes. A serving tier surfaces
    /// this counter because a growing value means the store itself is sick,
    /// not merely cold.
    pub corrupt_entries: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A result cache rooted at a directory, or disabled entirely.
///
/// A disabled cache (`ResultCache::disabled()`, the `--no-cache` escape
/// hatch) reports every lookup as a miss and stores nothing.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

/// Process-global temp-file sequence. Deliberately *not* per-instance:
/// two `ResultCache` values rooted at the same directory (a server and a
/// CLI sharing `$VR_CACHE_DIR`, or the serve worker pool next to a sweep)
/// would otherwise both start at sequence 0 and collide on
/// `<hash>.tmp.<pid>.0`, letting one writer rename the other's
/// half-written temp file into place.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// Default cache directory name, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = ".vr-cache";

    /// A cache rooted at `dir` (created on first store).
    pub fn at(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: Some(dir.into()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// A no-op cache: every lookup misses, stores are dropped.
    pub fn disabled() -> ResultCache {
        ResultCache {
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The file a given scenario hash lives at, if caching is enabled.
    pub fn path_for(&self, hash: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{hash}.json")))
    }

    /// Looks up a scenario hash, counting the outcome. Any read or decode
    /// failure (missing file, corruption, older schema version) is a miss.
    pub fn lookup(&self, hash: &str) -> Option<RunReport> {
        self.read_validated(hash).map(|(_, report)| report)
    }

    /// Like [`lookup`](Self::lookup), but returns the entry's original
    /// on-disk bytes. The text is still fully decoded first — a truncated
    /// or corrupt entry is never served — so callers (the `vr-serve` hot
    /// tier) get bytes that are guaranteed to round-trip.
    pub fn lookup_raw(&self, hash: &str) -> Option<String> {
        self.read_validated(hash).map(|(text, _)| text)
    }

    /// Shared hit path: read, validate by decoding, count, and quarantine
    /// corrupt entries so the next lookup is a clean (cheap) miss.
    fn read_validated(&self, hash: &str) -> Option<(String, RunReport)> {
        let Some(path) = self.path_for(hash) else {
            // Disabled cache: still a (counted) miss.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_report(&text) {
            Ok(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((text, report))
            }
            Err(_) => {
                // The entry exists but is unreadable: count it, move it
                // aside (best-effort — racing readers may have already
                // quarantined or a writer replaced it), and miss.
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let quarantine = path.with_extension("json.corrupt");
                if std::fs::rename(&path, &quarantine).is_err() {
                    let _ = std::fs::remove_file(&path);
                }
                None
            }
        }
    }

    /// Stores a report under a scenario hash (atomic temp-file + rename).
    ///
    /// # Errors
    ///
    /// Returns the failing path and I/O error; callers surface this once
    /// via telemetry rather than per-row.
    pub fn store(&self, hash: &str, report: &RunReport) -> Result<(), (PathBuf, std::io::Error)> {
        self.store_with_pause(hash, report, &|| {})
    }

    /// [`ResultCache::store`] with a hook between the temp-file write and
    /// the rename — the protocol's only window where a half-published
    /// entry exists on disk.
    ///
    /// Production code always passes a no-op (via [`ResultCache::store`]);
    /// tests pass a [`std::sync::Barrier`] wait to *force* two writers
    /// into the window simultaneously instead of hoping the scheduler
    /// produces the interleaving. Keeping the seam in the real code path
    /// means the stress test exercises the exact bytes production runs.
    ///
    /// # Errors
    ///
    /// Returns the failing path and I/O error, as [`ResultCache::store`].
    pub fn store_with_pause(
        &self,
        hash: &str,
        report: &RunReport,
        pause: &(dyn Fn() + Sync),
    ) -> Result<(), (PathBuf, std::io::Error)> {
        let Some(path) = self.path_for(hash) else {
            return Ok(());
        };
        // vr-lint::allow(panic-in-lib, reason = "path_for joins under the cache root, so a parent always exists")
        let dir = path.parent().expect("cache path always has a parent");
        std::fs::create_dir_all(dir).map_err(|e| (dir.to_path_buf(), e))?;
        // Unique temp name per process *and* per in-process write, so
        // concurrent stores — even from distinct `ResultCache` instances
        // sharing a directory — never clobber each other's half-written
        // file.
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!("{hash}.tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, encode_report(report)).map_err(|e| (tmp.clone(), e))?;
        pause();
        std::fs::rename(&tmp, &path).map_err(|e| (path.clone(), e))
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt_entries: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Resolves the cache directory from the environment: `VR_CACHE_DIR` if
/// set, else [`ResultCache::DEFAULT_DIR`].
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("VR_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(ResultCache::DEFAULT_DIR).to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vr_cluster::params::ClusterParams;
    use vr_cluster::units::Bytes;
    use vrecon::{PolicyKind, SimConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vr-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_report() -> RunReport {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(2);
        let trace = vr_workload::synth::blocking_scenario(2, Bytes::from_mb(64));
        crate::Scenario::new(
            SimConfig::new(cluster, PolicyKind::GLoadSharing).with_seed(3),
            Arc::new(trace),
        )
        .run()
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::at(&dir);
        let report = small_report();
        assert!(cache.lookup("abc").is_none());
        cache.store("abc", &report).unwrap();
        assert_eq!(cache.lookup("abc").unwrap(), report);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                corrupt_entries: 0
            }
        );
        // The raw bytes are exactly what was stored.
        assert_eq!(cache.lookup_raw("abc").unwrap(), encode_report(&report));
        // No stray temp files survive the atomic write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("abc.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_counted_and_quarantined() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::at(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
        assert!(cache.lookup("bad").is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().corrupt_entries, 1);
        // Quarantined aside: the next lookup is a clean miss, not another
        // corrupt entry.
        assert!(!dir.join("bad.json").exists());
        assert!(dir.join("bad.json.corrupt").exists());
        assert!(cache.lookup("bad").is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_a_miss_then_repaired_by_store() {
        let dir = tmp_dir("truncated");
        let cache = ResultCache::at(&dir);
        let report = small_report();
        cache.store("t", &report).unwrap();
        // Truncate the entry mid-file, as a crashed writer without the
        // atomic-rename protocol (or a torn disk) would leave it.
        let full = std::fs::read_to_string(dir.join("t.json")).unwrap();
        std::fs::write(dir.join("t.json"), &full[..full.len() / 2]).unwrap();
        assert!(cache.lookup("t").is_none(), "truncated entry must miss");
        assert!(cache.lookup_raw("t").is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        // A subsequent store overwrites the key; lookups hit again.
        cache.store("t", &report).unwrap();
        assert_eq!(cache.lookup("t").unwrap(), report);
        assert_eq!(cache.lookup_raw("t").unwrap(), full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_hits_and_never_writes() {
        let cache = ResultCache::disabled();
        let report = small_report();
        cache.store("xyz", &report).unwrap();
        assert!(cache.lookup("xyz").is_none());
        assert!(cache.lookup_raw("xyz").is_none());
        assert!(!cache.is_enabled());
        assert_eq!(cache.path_for("xyz"), None);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                corrupt_entries: 0
            }
        );
    }

    /// Satellite regression: two writers (in-process threads *and* two
    /// `ResultCache` instances standing in for a server + CLI sharing
    /// `$VR_CACHE_DIR`) hammering the same keys must never clobber each
    /// other's in-flight temp file — every lookup that hits decodes, and no
    /// temp file survives.
    #[test]
    fn concurrent_writers_on_shared_keys_never_corrupt() {
        let dir = tmp_dir("contention");
        let report = small_report();
        let caches = [ResultCache::at(&dir), ResultCache::at(&dir)];
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let caches = &caches;
                // RunReport is Send but not Sync (it carries a Cell-based
                // phase memo), so each thread owns its own clone.
                let report = report.clone();
                scope.spawn(move || {
                    let cache = &caches[worker % 2];
                    for round in 0..25 {
                        let hash = format!("key{}", round % 4);
                        cache.store(&hash, &report).unwrap();
                        if let Some(found) = cache.lookup(&hash) {
                            assert_eq!(found, report, "worker {worker} round {round}");
                        }
                    }
                });
            }
        });
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["key0.json", "key1.json", "key2.json", "key3.json"],
            "stray temp or quarantine files after contention"
        );
        for cache in &caches {
            assert_eq!(cache.stats().corrupt_entries, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The deterministic version of the contention test: a
    /// [`std::sync::Barrier`] inside [`ResultCache::store_with_pause`]
    /// *forces* every writer into the temp-written-but-not-renamed window
    /// at once — the exact interleaving the scheduler-driven test above
    /// may or may not produce — then releases them to race the renames.
    /// The last rename wins, but every intermediate state must be a
    /// complete file: the reader thread polling throughout must never see
    /// a missing or undecodable entry once the first rename lands.
    #[test]
    fn same_hash_writers_forced_into_rename_window_stay_atomic() {
        use std::sync::Barrier;

        const WRITERS: usize = 4;
        let dir = tmp_dir("interleave");
        let cache = ResultCache::at(&dir);
        let report = small_report();
        // All writers plus the coordinator meet at the window; a second
        // rendezvous holds them there while the coordinator inspects.
        let window = Barrier::new(WRITERS + 1);
        let release = Barrier::new(WRITERS + 1);
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let cache = &cache;
                let window = &window;
                let release = &release;
                let report = report.clone();
                scope.spawn(move || {
                    cache
                        .store_with_pause("shared", &report, &|| {
                            window.wait();
                            release.wait();
                        })
                        .unwrap();
                });
            }
            // Every writer now sits between write and rename: the entry
            // must not exist yet, and WRITERS distinct temp files must.
            window.wait();
            let temps = std::fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .contains(".tmp.")
                })
                .count();
            assert_eq!(temps, WRITERS, "one temp file per paused writer");
            assert!(
                cache.lookup("shared").is_none(),
                "no rename may land before the barrier releases"
            );
            release.wait();
            // Poll while the renames race each other; every observation
            // after the first must decode to the full report.
            loop {
                match cache.lookup("shared") {
                    Some(found) => {
                        assert_eq!(found, report);
                        break;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
        // All four renamed over each other; the survivor decodes and no
        // temp file is left behind.
        assert_eq!(cache.lookup("shared").unwrap(), report);
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["shared.json"]);
        assert_eq!(cache.stats().corrupt_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
