pub fn alpha_then_beta(alpha: &Mutex<u64>, beta: &Mutex<u64>) {
    let a = alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    drop(b);
    drop(a);
}

pub fn beta_then_alpha(alpha: &Mutex<u64>, beta: &Mutex<u64>) {
    let b = beta.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let a = alpha.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    drop(a);
    drop(b);
}
