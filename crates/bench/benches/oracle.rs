//! Engine vs reference oracle: quantifies what the production event queue,
//! load index, and incremental bookkeeping buy over the naive O(n²)
//! re-scan that `vr-check` uses for differential testing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vr_check::{run_oracle, OracleSkew};
use vr_cluster::params::ClusterParams;
use vr_simcore::rng::SimRng;
use vr_workload::trace::{spec_trace_scaled, TraceLevel};
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn setup() -> (SimConfig, vr_workload::trace::Trace) {
    let trace = spec_trace_scaled(TraceLevel::Normal, &mut SimRng::seed_from(42), 0.05);
    let mut cluster = ClusterParams::cluster1();
    cluster.nodes.truncate(8);
    let config = SimConfig::new(cluster, PolicyKind::VReconfiguration).with_seed(7);
    (config, trace)
}

fn engine_vs_oracle(c: &mut Criterion) {
    let (config, trace) = setup();
    let mut group = c.benchmark_group("engine_vs_oracle");
    group.sample_size(10);
    group.bench_function("engine_spec_normal_8_nodes", |b| {
        b.iter(|| {
            let report = Simulation::new(config.clone()).run(&trace);
            black_box(report.finished_at)
        })
    });
    group.bench_function("oracle_spec_normal_8_nodes", |b| {
        b.iter(|| {
            let report = run_oracle(&config, &trace, OracleSkew::None).unwrap();
            black_box(report.finished_at)
        })
    });
    group.finish();
}

criterion_group!(benches, engine_vs_oracle);
criterion_main!(benches);
