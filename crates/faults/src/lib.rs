//! Deterministic fault injection for the V-Reconfiguration simulator.
//!
//! The paper's claim is *adaptive recovery* — yet a simulator that only
//! replays clean traces never exercises the recovery paths. This crate
//! defines declarative, seeded [`FaultPlan`]s that the simulation driver
//! consults at its injection points:
//!
//! * **node crash / restart** at a configured simulation time — resident
//!   jobs are drained and re-queued by the scheduler, and the node rejects
//!   admissions until (optionally) restarted;
//! * **migration failure** with probability *p* — an in-flight transfer
//!   aborts and the scheduler retries with exponential backoff;
//! * **load-information loss** with probability *p* — a node's entry is
//!   dropped from a periodic load exchange, leaving peers with stale data;
//! * **reservation-release stall** — a reserved workstation stays reserved
//!   for a configured extra delay after the protocol releases it.
//!
//! All random draws flow through a dedicated [`SimRng`] stream forked from
//! the simulation seed, so faults compose with determinism: the same seed
//! and the same plan reproduce a bit-identical run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;

pub use inject::{FaultCounters, FaultInjector};
pub use plan::{FaultPlan, NodeCrash, PlanParseError};
