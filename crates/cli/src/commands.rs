//! The CLI subcommands.

use std::fs::File;
use std::io::{BufReader, BufWriter, IsTerminal, Write};
use std::sync::Arc;

use vr_check::fuzz::generate;
use vr_check::{run_fuzz, CheckScenario, FuzzOptions, OracleSkew};
use vr_cluster::params::ClusterParams;
use vr_faults::FaultPlan;
use vr_lint::{analyze_workspace, find_workspace_root, lint_workspace};
use vr_metrics::comparison::MetricComparison;
use vr_metrics::table::{fmt_f, TextTable};
use vr_runner::{ResultCache, Runner, Scenario, SweepOptions, SweepPlan};
use vr_serve::{check_against, run_loadgen, JsonlRequestLog, LoadgenConfig, ServeConfig};
use vr_simcore::rng::SimRng;
use vr_workload::trace::{
    app_trace_scaled, spec_trace_scaled, Trace, TraceLevel, APP_LIFETIME_SCALE, SPEC_LIFETIME_SCALE,
};
use vr_workload::{read_trace, write_trace};
use vrecon::config::{LoadInfoMode, PlacementMode, SimConfig};
use vrecon::encode_report;
use vrecon::plugin::{build_policy, kind_of, registry, ParamBag};
use vrecon::policy::PolicyKind;
use vrecon::report::RunReport;
use vrecon::sim::Simulation;

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
vrecon — adaptive & virtual cluster reconfiguration (ICDCS 2002 reproduction)

USAGE:
  vrecon gen     --group <spec|app> --level <1..5> [--seed N] [--scale F] [--out FILE]
  vrecon inspect <TRACE_FILE>
  vrecon run     <TRACE_FILE> --cluster <cluster1|cluster2> --policy <POLICY>
                 [--seed N] [--nodes N] [--netram] [--csv] [--log] [--gantt]
                 [--placement optimistic|commit-aware] [--load-info global|staggered:N]
                 [--fault-plan FILE] [--audit] [--max-sim-time SECS]
                 [--trace-out FILE] [--trace-format chrome|jsonl]
                 [--spec FILE] [--report-out FILE]
  vrecon compare <TRACE_FILE> --cluster <cluster1|cluster2> [--seed N] [--nodes N]
  vrecon sweep   [spec] [app] [--seed N] [--trace-seed N] [--jobs N] [--no-cache]
  vrecon trace   <spec|app> [--level <1..5>] [--policy <POLICY>] [--seed N]
                 [--trace-seed N] [--nodes N] [--max-sim-time SECS]
                 [--format chrome|jsonl] [--out FILE] [--profile-out FILE]
  vrecon lint    [--root DIR] [--format text|json]
  vrecon analyze [--root DIR] [--format text|json|sarif] [--sarif-out FILE]
  vrecon fuzz    [--iters N] [--seed N] [--jobs N] [--failures-dir DIR]
                 [--broken-oracle]
  vrecon serve   [--addr HOST:PORT] [--jobs N] [--cache-dir DIR] [--no-cache]
                 [--max-inflight N] [--hot-cap N] [--read-timeout-ms MS]
                 [--max-conns N] [--request-log FILE]
  vrecon loadgen [--addr HOST:PORT] [--specs N] [--warm N] [--concurrency N]
                 [--seed N] [--followers N] [--heavy-jobs N] [--out FILE]
                 [--check BASELINE] [--tolerance T]
  vrecon spec    [--seed N] [--iter N] [--out FILE]

POLICIES: none | random | cpu | weighted | gls | suspend | vrecon, or any
registry name — malleable and fractional take knobs via `name:k=v,...`
(e.g. `--policy malleable:max_step=2`, `--policy fractional:oversub=1.5`)

`sweep` runs its whole matrix on the parallel experiment runner: `--jobs N`
sets the worker count (0 or unset = all cores) and results are cached by
content hash under `.vr-cache/` (`$VR_CACHE_DIR` overrides, `--no-cache`
bypasses). Tables are identical for any `--jobs` value.

FAULT PLANS (--fault-plan): a text file, one directive per line —
  crash node=N at=SECS [restart_after=SECS]
  migration-failure p=PROB     max-retries N      retry-backoff SECS
  load-info-loss p=PROB        reservation-stall SECS      seed-salt N
`--audit` switches on the invariant auditor; violations are printed (and
fail the command) after the report.

`run` defaults reproduce the paper byte-for-byte; two knobs trade that
fidelity for scale realism. `--placement commit-aware` makes placement
subtract in-transit demand and in-flight slot commitments (the default
`optimistic` races and re-queues, which floods large clusters with
transfer ping-pong). `--load-info staggered:N` refreshes the load vector
in N rotating node groups, so entries can be up to N exchange periods
stale (`staggered:1` equals `global`). `--nodes N` beyond the paper
cluster's size repeats the node list cyclically — cluster size is a free
parameter.

`trace` replays one workload-group scenario with the structured tracer
chained and exports the trace: `chrome` (default) is Chrome trace-event
JSON loadable in chrome://tracing or Perfetto, `jsonl` is compact
JSON-lines. `--profile-out` additionally writes profiling counters
(events/sec, per-kind counts, inter-event histogram). `run --trace-out`
does the same for an on-disk trace file. Trace bytes are deterministic:
same plan + seed ⇒ byte-identical files.

A run that stops at the `--max-sim-time` horizon with events still queued
is flagged with a loud `WARNING:` — its measurements are truncated, not
converged.

`lint` runs the vr-lint determinism & panic-safety analyzer over the
workspace (the root is found by walking up from the current directory, or
taken from `--root`) and fails when any diagnostic fires.

`analyze` runs the vr-analyze semantic pass — cross-crate taint tracking
for the wall-clock/RNG determinism boundaries plus lock-order, blocking
and Condvar discipline over the pool/serve layer. Same root discovery and
failure rule as `lint`; `--format sarif` (or `--sarif-out FILE` next to
another format) emits SARIF 2.1.0 for code-scanning UIs.

`fuzz` generates `--iters` seeded random scenarios and runs each through
the engine, a naive reference oracle, and the invariant auditor. Any
divergence is shrunk to a minimal reproducer and written under
`--failures-dir` (default `fuzz-failures/`); the command fails if any
scenario diverged. Output is byte-identical for any `--jobs` value.
`--broken-oracle` deliberately skews the oracle's completion timestamps by
one microsecond to prove the harness detects and shrinks a real mismatch.

`serve` runs what-if scheduling as an HTTP service: POST a scenario spec
in the fuzzer's replayable text format (see `vrecon spec`) to `/run` and
the deterministic report JSON comes back — byte-identical to what
`vrecon run --spec FILE --report-out FILE` writes for the same spec.
Responses come from an in-memory hot tier, the on-disk result cache
(`--cache-dir`, default `.vr-cache/`; `--no-cache` disables the disk
tier), or a fresh simulation on `--jobs` workers. Identical concurrent
requests coalesce onto one run; distinct cold scenarios past
`--max-inflight` are refused with 503 and connections past `--max-conns`
with 429 — overload is always explicit, never an invisible queue.
`GET /stats` reports counters, `GET /healthz` liveness; `--request-log`
appends one JSON record per request.

`spec` renders one fuzzer-generated scenario spec (`--seed`/`--iter`
select which). `run --spec FILE` replays such a spec directly instead of
a trace file (the spec carries its own cluster, policy, seed, and
horizon, and always audits); `--report-out FILE` writes the canonical
report encoding — the exact bytes `serve` returns for that spec.

`loadgen` drives a running `serve` instance through cold / warm /
coalesce / overload phases and prints the BENCH_serve.json document
(`--out FILE` writes it instead); with `--check BASELINE` it compares
against a committed baseline — phase counters exactly, warm-phase QPS
and p99 within `--tolerance` (default 0.9).
";

fn parse_level(raw: &str) -> Result<TraceLevel, ArgError> {
    match raw {
        "1" => Ok(TraceLevel::Light),
        "2" => Ok(TraceLevel::Moderate),
        "3" => Ok(TraceLevel::Normal),
        "4" => Ok(TraceLevel::ModeratelyIntensive),
        "5" => Ok(TraceLevel::HighlyIntensive),
        other => Err(ArgError(format!("--level must be 1..5, got {other}"))),
    }
}

/// Parses `--policy name[:k=v,...]`: a historical short name or any
/// registry name, optionally followed by a parameter bag for the families
/// that take knobs (e.g. `malleable:max_step=2`, `fractional:oversub=1.5`).
fn parse_policy(raw: &str) -> Result<(PolicyKind, ParamBag), ArgError> {
    let (name, params) = match raw.split_once(':') {
        Some((name, params)) => (
            name,
            ParamBag::parse(params)
                .map_err(|e| ArgError(format!("bad policy parameters in {raw}: {e}")))?,
        ),
        None => (raw, ParamBag::new()),
    };
    let kind = match name {
        "none" => Some(PolicyKind::NoLoadSharing),
        "random" => Some(PolicyKind::Random),
        "cpu" => Some(PolicyKind::CpuOnly),
        "gls" => Some(PolicyKind::GLoadSharing),
        "weighted" => Some(PolicyKind::WeightedCpuMem),
        "suspend" => Some(PolicyKind::SuspendLargest),
        "vrecon" => Some(PolicyKind::VReconfiguration),
        // Fall through to the plugin registry's own names
        // (g-loadsharing, malleable, fractional, ...).
        other => kind_of(other),
    };
    let kind = kind.ok_or_else(|| {
        ArgError(format!(
            "unknown policy {name}; expected none|random|cpu|weighted|gls|suspend|vrecon \
             or a registry name ({})",
            registry().map(|e| e.name).join("|")
        ))
    })?;
    // Surface unknown-knob errors here, where the message can name the
    // flag, instead of from config.validate() later.
    build_policy(kind, &params).map_err(|e| ArgError(format!("--policy {raw}: {e}")))?;
    Ok((kind, params))
}

fn parse_cluster(args: &Args) -> Result<ClusterParams, ArgError> {
    let mut cluster = match args.opt("cluster") {
        Some("cluster1") => ClusterParams::cluster1(),
        Some("cluster2") | None => ClusterParams::cluster2(),
        Some(other) => {
            return Err(ArgError(format!(
                "unknown cluster {other}; expected cluster1|cluster2"
            )))
        }
    };
    if let Some(n) = args.opt_parse::<usize>("nodes")? {
        if n == 0 {
            return Err(ArgError("--nodes must be at least 1".to_owned()));
        }
        if n <= cluster.size() {
            cluster.nodes.truncate(n);
        } else {
            // Cluster size is a free parameter: grow past the paper's 32
            // workstations by repeating the node list cyclically, so a
            // heterogeneous cluster keeps its mix ratio at any size.
            let base = cluster.nodes.clone();
            cluster.nodes = (0..n).map(|i| base[i % base.len()]).collect();
        }
    }
    Ok(cluster)
}

fn parse_placement(raw: &str) -> Result<PlacementMode, ArgError> {
    match raw {
        "optimistic" => Ok(PlacementMode::Optimistic),
        "commit-aware" => Ok(PlacementMode::CommitAware),
        other => Err(ArgError(format!(
            "unknown placement mode {other}; expected optimistic|commit-aware"
        ))),
    }
}

fn parse_load_info(raw: &str) -> Result<LoadInfoMode, ArgError> {
    if raw == "global" {
        return Ok(LoadInfoMode::Global);
    }
    if let Some(groups) = raw.strip_prefix("staggered:") {
        let groups: u32 = groups
            .parse()
            .map_err(|_| ArgError(format!("bad staggered group count in {raw}")))?;
        if groups == 0 {
            return Err(ArgError(
                "staggered group count must be non-zero".to_owned(),
            ));
        }
        return Ok(LoadInfoMode::Staggered { groups });
    }
    Err(ArgError(format!(
        "unknown load-info mode {raw}; expected global|staggered:N"
    )))
}

fn load_trace(path: &str) -> Result<Trace, ArgError> {
    let file = File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    let trace = read_trace(BufReader::new(file))
        .map_err(|e| ArgError(format!("cannot parse {path}: {e}")))?;
    trace
        .validate()
        .map_err(|e| ArgError(format!("{path} is not a valid trace: {e}")))?;
    Ok(trace)
}

/// `vrecon gen` — generate a paper trace and write it out.
pub fn gen(args: &Args) -> Result<String, ArgError> {
    let level = parse_level(args.opt_or("level", "3"))?;
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(42);
    let mut rng = SimRng::seed_from(seed);
    let trace = match args.opt_or("group", "spec") {
        "spec" => {
            let scale = args
                .opt_parse::<f64>("scale")?
                .unwrap_or(SPEC_LIFETIME_SCALE);
            spec_trace_scaled(level, &mut rng, scale)
        }
        "app" => {
            let scale = args
                .opt_parse::<f64>("scale")?
                .unwrap_or(APP_LIFETIME_SCALE);
            app_trace_scaled(level, &mut rng, scale)
        }
        other => return Err(ArgError(format!("--group must be spec|app, got {other}"))),
    };
    let out_path = args
        .opt("out")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{}.vrt", trace.name.to_lowercase()));
    let file =
        File::create(&out_path).map_err(|e| ArgError(format!("cannot create {out_path}: {e}")))?;
    let mut w = BufWriter::new(file);
    write_trace(&trace, &mut w).map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;
    w.flush().map_err(|e| ArgError(e.to_string()))?;
    Ok(format!(
        "wrote {} ({} jobs, window {:.0}s) to {out_path}",
        trace.name,
        trace.len(),
        trace.last_submission().as_secs_f64()
    ))
}

/// `vrecon inspect` — print a trace's statistics.
pub fn inspect(args: &Args) -> Result<String, ArgError> {
    let trace = load_trace(args.single_positional("trace file")?)?;
    let mut per_program: std::collections::BTreeMap<&str, (usize, f64, f64)> =
        std::collections::BTreeMap::new();
    for job in &trace.jobs {
        let entry = per_program
            .entry(job.name.as_str())
            .or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += job.cpu_work.as_secs_f64();
        entry.2 += job.max_working_set().as_mb_f64();
    }
    let mut table = TextTable::new(vec![
        "program",
        "jobs",
        "mean cpu work (s)",
        "mean peak ws (MB)",
    ]);
    for (name, (count, work, ws)) in &per_program {
        table.row(vec![
            (*name).to_owned(),
            count.to_string(),
            fmt_f(work / *count as f64, 1),
            fmt_f(ws / *count as f64, 1),
        ]);
    }
    Ok(format!(
        "trace {}: {} jobs over {:.0}s, total CPU work {:.0}s\n\n{}",
        trace.name,
        trace.len(),
        trace.last_submission().as_secs_f64(),
        trace.total_cpu_work_secs(),
        table.render()
    ))
}

fn render_report(report: &RunReport, csv: bool) -> String {
    if csv {
        let mut table = TextTable::new(vec![
            "trace",
            "policy",
            "jobs",
            "avg_slowdown",
            "t_exe_s",
            "t_que_s",
            "t_page_s",
            "t_mig_s",
            "idle_mb",
            "skew",
            "reservations",
            "suspensions",
        ]);
        table.row(vec![
            report.trace_name.clone(),
            report.policy.to_string().replace(',', ";"),
            report.summary.jobs.to_string(),
            fmt_f(report.avg_slowdown(), 4),
            fmt_f(report.total_execution_secs(), 1),
            fmt_f(report.total_queue_secs(), 1),
            fmt_f(report.summary.totals.page, 1),
            fmt_f(report.summary.totals.migration, 1),
            fmt_f(report.avg_idle_memory_mb(), 1),
            fmt_f(report.avg_balance_skew(), 4),
            report.reservations.started.to_string(),
            report.counters.suspensions.to_string(),
        ]);
        table.render_csv()
    } else {
        let b = &report.summary.totals;
        let histogram =
            vr_simcore::histogram::slowdown_histogram(report.jobs.iter().map(|j| j.slowdown()));
        format!(
            "{}\nbreakdown: T_cpu {:.0}s  T_page {:.0}s  T_que {:.0}s  T_mig {:.0}s\n\
             median slowdown {:.2}, p95 {:.2}; {} blocked submissions, {} stale bounces\n\
             slowdown distribution:\n{}",
            report.brief(),
            b.cpu,
            b.page,
            b.queue,
            b.migration,
            report.summary.median_slowdown,
            report.summary.p95_slowdown,
            report.counters.blocked_submissions,
            report.counters.stale_rejections,
            histogram.render_ascii(40),
        )
    }
}

/// Renders an ASCII occupancy chart: one row per workstation, one column
/// per time bucket, cells showing the resident job count (' ' idle, digits,
/// '+' for 10+, capital letters never used so 'R' marks reserved periods).
fn render_gantt(report: &RunReport, nodes: usize, width: usize) -> String {
    use vr_analysis::timeline::{node_occupancy_timeline, reservation_timeline};
    let occupancy = node_occupancy_timeline(&report.events, nodes);
    if occupancy.is_empty() {
        return "(no occupancy events)".to_owned();
    }
    let end = report.finished_at.as_secs_f64().max(1.0);
    let bucket = end / width as f64;
    // Sample each node's count at bucket midpoints.
    let mut grid = vec![vec![0usize; width]; nodes];
    let mut idx = 0;
    for (b, row_time) in (0..width).map(|b| (b, (b as f64 + 0.5) * bucket)) {
        while idx + 1 < occupancy.len() && occupancy[idx + 1].0.as_secs_f64() <= row_time {
            idx += 1;
        }
        for (n, cell) in occupancy[idx].1.iter().enumerate() {
            grid[n][b] = *cell;
        }
    }
    // Reserved intervals per bucket (cluster-level count > 0 marked on a
    // separate footer row; per-node attribution would need node ids from
    // the reservation events, which we have).
    let mut reserved_row = vec![' '; width];
    let res = reservation_timeline(&report.events);
    let mut ridx = 0usize;
    let mut current = 0usize;
    for (b, row_time) in (0..width).map(|b| (b, (b as f64 + 0.5) * bucket)) {
        while ridx < res.len() && res[ridx].0.as_secs_f64() <= row_time {
            current = res[ridx].1;
            ridx += 1;
        }
        if current > 0 {
            reserved_row[b] = 'R';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "occupancy over {:.0}s ({} buckets of {:.0}s):\n",
        end, width, bucket
    ));
    for (n, row) in grid.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for c in row {
            out.push(match c {
                0 => ' ',
                1..=9 => char::from_digit(*c as u32, 10).unwrap_or('+'),
                _ => '+',
            });
        }
        out.push_str("|\n");
    }
    out.push_str("reserved |");
    out.extend(reserved_row);
    out.push_str("|\n");
    out
}

/// Writes the canonical report encoding plus a trailing newline — the
/// exact bytes a `vrecon serve` response carries for the same scenario.
fn write_report_out(path: &str, report: &RunReport) -> Result<(), ArgError> {
    let mut text = encode_report(report);
    text.push('\n');
    std::fs::write(path, text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// `vrecon run --spec` — replay a scenario-spec file (the serve wire
/// format) instead of a trace file. The spec carries its own cluster,
/// policy, seed, and horizon, and always runs with the auditor on, so
/// the `--report-out` bytes match a serve response for the same spec.
fn run_spec(args: &Args, path: &str) -> Result<String, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let scenario = CheckScenario::parse(&text)
        .map_err(|e| ArgError(format!("{path} is not a valid scenario spec: {e}")))?;
    let (config, trace) = scenario
        .to_sim()
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let report = Scenario::new(config, Arc::new(trace)).run();
    let mut out = render_report(&report, args.flag("csv"));
    if let Some(out_path) = args.opt("report-out") {
        write_report_out(out_path, &report)?;
        out.push_str(&format!("\nreport -> {out_path}"));
    }
    if report.audit_violations.is_empty() {
        out.push_str("\naudit: clean (no invariant violations)");
    } else {
        let mut listing = String::new();
        for v in &report.audit_violations {
            listing.push_str("\n  ");
            listing.push_str(v);
        }
        return Err(ArgError(format!(
            "audit found {} invariant violation(s):{listing}",
            report.audit_violations.len()
        )));
    }
    if let Some(warning) = truncation_warning(&report) {
        eprintln!("{warning}");
        out.push('\n');
        out.push_str(&warning);
    }
    Ok(out)
}

/// `vrecon run` — replay a trace under one policy.
pub fn run(args: &Args) -> Result<String, ArgError> {
    if let Some(spec_path) = args.opt("spec") {
        if !args.positional().is_empty() {
            return Err(ArgError(
                "give either a trace file or --spec, not both".to_owned(),
            ));
        }
        return run_spec(args, spec_path);
    }
    let trace = load_trace(args.single_positional("trace file")?)?;
    let cluster = parse_cluster(args)?;
    let cluster_size = cluster.size();
    let (policy, policy_params) = parse_policy(args.opt_or("policy", "vrecon"))?;
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(7);
    let mut config = SimConfig::new(cluster, policy)
        .with_policy_params(policy_params)
        .with_seed(seed);
    if args.flag("netram") {
        config = config.with_network_ram();
    }
    if let Some(mode) = args.opt("placement") {
        config = config.with_placement(parse_placement(mode)?);
    }
    if let Some(mode) = args.opt("load-info") {
        config = config.with_load_info(parse_load_info(mode)?);
    }
    if let Some(path) = args.opt("fault-plan") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let plan = FaultPlan::parse(&text)
            .map_err(|e| ArgError(format!("{path} is not a valid fault plan: {e}")))?;
        config = config.with_faults(plan);
    }
    config = config.with_audit(args.flag("audit"));
    if let Some(horizon) = parse_max_sim_time(args)? {
        config = config.with_max_sim_time(horizon);
    }
    config
        .validate()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;
    let faulted = config.fault_plan.as_ref().is_some_and(|p| !p.is_empty());
    let nodes = cluster_size;
    let simulation = Simulation::new(config);
    let (report, trace_note) = match args.opt("trace-out") {
        Some(path) => {
            let (report, data) = simulation.run_traced(&trace);
            let format = parse_trace_format(args.opt_or("trace-format", "chrome"))?;
            write_trace_export(path, format, &data)?;
            let note = format!(
                "\ntrace: {} records, {} spans -> {path} ({})",
                data.records.len(),
                data.spans.len(),
                format.label(),
            );
            (report, Some(note))
        }
        None => (simulation.run(&trace), None),
    };
    let mut out = render_report(&report, args.flag("csv"));
    if let Some(note) = trace_note {
        out.push_str(&note);
    }
    if let Some(out_path) = args.opt("report-out") {
        write_report_out(out_path, &report)?;
        out.push_str(&format!("\nreport -> {out_path}"));
    }
    if faulted {
        let c = &report.faults;
        out.push_str(&format!(
            "\nfaults: {} crashes ({} restarts), {} migration failures \
             ({} retries, {} abandoned), {} jobs re-queued, \
             {} lost load reports, {} stalled releases",
            c.crashes,
            c.restarts,
            c.migration_failures,
            c.migration_retries,
            c.migrations_abandoned,
            c.requeued_jobs,
            c.lost_load_reports,
            c.stalled_releases,
        ));
    }
    if args.flag("audit") {
        if report.audit_violations.is_empty() {
            out.push_str("\naudit: clean (no invariant violations)");
        } else {
            let mut listing = String::new();
            for v in &report.audit_violations {
                listing.push_str("\n  ");
                listing.push_str(v);
            }
            return Err(ArgError(format!(
                "audit found {} invariant violation(s):{listing}",
                report.audit_violations.len()
            )));
        }
    }
    if args.flag("gantt") {
        out.push_str("\n\n");
        out.push_str(&render_gantt(&report, nodes, 100));
    }
    if args.flag("log") {
        out.push_str("\n\nscheduler event log:\n");
        for event in report.events.entries() {
            out.push_str(&event.to_string());
            out.push('\n');
        }
    }
    if let Some(warning) = truncation_warning(&report) {
        // Loud on both streams: stderr so piped stdout doesn't hide it,
        // stdout so the flag lives next to the numbers it disqualifies.
        eprintln!("{warning}");
        out.push('\n');
        out.push_str(&warning);
    }
    Ok(out)
}

/// `--max-sim-time SECS` as a span, if given.
fn parse_max_sim_time(args: &Args) -> Result<Option<vr_simcore::time::SimSpan>, ArgError> {
    match args.opt_parse::<f64>("max-sim-time")? {
        Some(secs) if secs > 0.0 => Ok(Some(vr_simcore::time::SimSpan::from_secs_f64(secs))),
        Some(secs) => Err(ArgError(format!(
            "--max-sim-time must be positive, got {secs}"
        ))),
        None => Ok(None),
    }
}

/// The loud flag every report consumer must show for horizon-truncated
/// runs: without it, a truncated run's figures look like a drained run's.
fn truncation_warning(report: &RunReport) -> Option<String> {
    (!report.run_stats.drained).then(|| {
        format!(
            "WARNING: horizon-truncated run: stopped at max-sim-time ({:.0}s) with events \
             still queued after {} events ({} jobs unfinished) — measurements are truncated, \
             not converged",
            report.run_stats.final_time.as_secs_f64(),
            report.run_stats.events_processed,
            report.unfinished_jobs,
        )
    })
}

/// Trace export format selector shared by `run --trace-out` and `trace`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Jsonl,
}

impl TraceFormat {
    fn label(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Jsonl => "jsonl",
        }
    }
}

fn parse_trace_format(raw: &str) -> Result<TraceFormat, ArgError> {
    match raw {
        "chrome" => Ok(TraceFormat::Chrome),
        "jsonl" => Ok(TraceFormat::Jsonl),
        other => Err(ArgError(format!(
            "trace format must be chrome|jsonl, got {other}"
        ))),
    }
}

fn write_trace_export(
    path: &str,
    format: TraceFormat,
    data: &vr_trace::TraceData,
) -> Result<(), ArgError> {
    let payload = match format {
        TraceFormat::Chrome => vr_trace::chrome_trace(data),
        TraceFormat::Jsonl => vr_trace::jsonl(data),
    };
    std::fs::write(path, payload).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// `vrecon compare` — G-Loadsharing vs V-Reconfiguration on one trace.
pub fn compare(args: &Args) -> Result<String, ArgError> {
    let trace = load_trace(args.single_positional("trace file")?)?;
    let cluster = parse_cluster(args)?;
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(7);
    let run_one = |policy| {
        Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(seed)).run(&trace)
    };
    let gls = run_one(PolicyKind::GLoadSharing);
    let vr = run_one(PolicyKind::VReconfiguration);
    let mut table = TextTable::new(vec![
        "metric",
        "G-Loadsharing",
        "V-Reconfiguration",
        "reduction",
    ]);
    let mut row = |name: &str, a: f64, b: f64, digits: usize| {
        let c = MetricComparison::new(a, b);
        table.row(vec![
            name.to_owned(),
            fmt_f(a, digits),
            fmt_f(b, digits),
            format!("{:.1}%", c.reduction()),
        ]);
    };
    row(
        "total execution time (s)",
        gls.total_execution_secs(),
        vr.total_execution_secs(),
        0,
    );
    row(
        "total queuing time (s)",
        gls.total_queue_secs(),
        vr.total_queue_secs(),
        0,
    );
    row(
        "total paging time (s)",
        gls.summary.totals.page,
        vr.summary.totals.page,
        0,
    );
    row("average slowdown", gls.avg_slowdown(), vr.avg_slowdown(), 2);
    row(
        "avg idle memory (MB)",
        gls.avg_idle_memory_mb(),
        vr.avg_idle_memory_mb(),
        0,
    );
    row(
        "avg balance skew",
        gls.avg_balance_skew(),
        vr.avg_balance_skew(),
        3,
    );
    Ok(format!(
        "{}\nreconfigurations: {} reservations, {} jobs served",
        table.render(),
        vr.reservations.started,
        vr.reservations.jobs_served
    ))
}

/// A workload-group trace builder: level + RNG in, full trace out.
type TraceBuilder = fn(TraceLevel, &mut SimRng) -> Trace;

/// One workload group's cluster and trace builder for `vrecon sweep`.
fn sweep_group(name: &str) -> Result<(ClusterParams, TraceBuilder), ArgError> {
    match name {
        "spec" => Ok((ClusterParams::cluster1(), |l, r| {
            spec_trace_scaled(l, r, SPEC_LIFETIME_SCALE)
        })),
        "app" => Ok((ClusterParams::cluster2(), |l, r| {
            app_trace_scaled(l, r, APP_LIFETIME_SCALE)
        })),
        other => Err(ArgError(format!("group must be spec|app, got {other}"))),
    }
}

/// `vrecon sweep` — the full five-trace sweep of one or more workload
/// groups, G-Loadsharing vs V-Reconfiguration (the data behind Figures
/// 1–4). Groups are positional (`vrecon sweep spec app`); the whole matrix
/// executes on the experiment runner, so `--jobs N` parallelises it and
/// the content-addressed result cache makes repeat sweeps cheap
/// (`--no-cache` bypasses it). Tables are bit-identical for any `--jobs`
/// value; a cache/timing line is appended for scripts to grep.
pub fn sweep(args: &Args) -> Result<String, ArgError> {
    let mut groups: Vec<&str> = args.positional().iter().map(String::as_str).collect();
    match args.opt("group") {
        Some(_) if !groups.is_empty() => {
            return Err(ArgError(
                "give groups either positionally or via --group, not both".to_owned(),
            ))
        }
        Some(group) => groups.push(group),
        None if groups.is_empty() => groups.push("spec"),
        None => {}
    }
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(7);
    let trace_seed = args.opt_parse::<u64>("trace-seed")?.unwrap_or(42);
    let jobs = args.opt_parse::<usize>("jobs")?.unwrap_or(0);
    let cache = if args.flag("no-cache") {
        ResultCache::disabled()
    } else {
        ResultCache::at(vr_runner::default_cache_dir())
    };

    let mut plan = SweepPlan::new();
    for name in &groups {
        let (cluster, build) = sweep_group(name)?;
        for level in TraceLevel::ALL {
            let trace = Arc::new(build(level, &mut SimRng::seed_from(trace_seed)));
            for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
                plan.push(Scenario::new(
                    SimConfig::new(cluster.clone(), policy).with_seed(seed),
                    Arc::clone(&trace),
                ));
            }
        }
    }

    let runner = Runner::new(SweepOptions {
        jobs,
        cache,
        progress: std::io::stderr().is_terminal(),
    });
    let outcome = runner.run(&plan);
    if let Some((index, message)) = outcome.failures.first() {
        return Err(ArgError(format!("scenario {index} failed: {message}")));
    }
    for result in outcome.results.iter().flatten() {
        if !result.report.run_stats.drained {
            eprintln!(
                "WARNING: horizon-truncated run [{}]: stopped at max-sim-time with events \
                 still queued — measurements are truncated, not converged",
                result.label,
            );
        }
    }
    let mut results = outcome.results.iter().flatten();

    let mut out = String::new();
    for (i, name) in groups.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if groups.len() > 1 {
            out.push_str(&format!("group {name}:\n"));
        }
        let mut table = TextTable::new(vec![
            "trace",
            "exec reduction",
            "queue reduction",
            "slowdown G-LS",
            "slowdown V-R",
            "slowdown reduction",
        ]);
        for _ in TraceLevel::ALL {
            let gls = &results
                .next()
                .ok_or_else(|| ArgError("sweep produced fewer results than planned".into()))?
                .report;
            let vr = &results
                .next()
                .ok_or_else(|| ArgError("sweep produced fewer results than planned".into()))?
                .report;
            let exec = MetricComparison::new(gls.total_execution_secs(), vr.total_execution_secs());
            let queue = MetricComparison::new(gls.total_queue_secs(), vr.total_queue_secs());
            let slow = MetricComparison::new(gls.avg_slowdown(), vr.avg_slowdown());
            table.row(vec![
                gls.trace_name.clone(),
                format!("{:.1}%", exec.reduction()),
                format!("{:.1}%", queue.reduction()),
                fmt_f(slow.baseline, 2),
                fmt_f(slow.candidate, 2),
                format!("{:.1}%", slow.reduction()),
            ]);
        }
        out.push_str(&table.render());
    }
    out.push_str(&format!(
        "\nsweep: {} scenarios on {} workers in {:.2}s; cache: {} hits, {} misses",
        plan.len(),
        outcome.jobs,
        outcome.wall.as_secs_f64(),
        outcome.cache.hits,
        outcome.cache.misses,
    ));
    Ok(out)
}

/// `vrecon trace` — replay one workload-group scenario with the tracer
/// chained and export the structured trace (plus, optionally, profiling
/// counters). The trace bytes are a pure function of the scenario — two
/// identical invocations write byte-identical files.
pub fn trace(args: &Args) -> Result<String, ArgError> {
    let group = args.single_positional("workload group (spec|app)")?;
    let (mut cluster, build) = sweep_group(group)?;
    if let Some(n) = args.opt_parse::<usize>("nodes")? {
        if n == 0 || n > cluster.size() {
            return Err(ArgError(format!(
                "--nodes must be 1..={}, got {n}",
                cluster.size()
            )));
        }
        cluster.nodes.truncate(n);
    }
    let level = parse_level(args.opt_or("level", "3"))?;
    let (policy, policy_params) = parse_policy(args.opt_or("policy", "vrecon"))?;
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(7);
    let trace_seed = args.opt_parse::<u64>("trace-seed")?.unwrap_or(42);
    let workload = build(level, &mut SimRng::seed_from(trace_seed));
    let mut config = SimConfig::new(cluster, policy)
        .with_policy_params(policy_params)
        .with_seed(seed);
    if let Some(horizon) = parse_max_sim_time(args)? {
        config = config.with_max_sim_time(horizon);
    }
    config
        .validate()
        .map_err(|e| ArgError(format!("invalid configuration: {e}")))?;

    let started = std::time::Instant::now();
    let (report, data) = Simulation::new(config).run_traced(&workload);
    let wall_secs = started.elapsed().as_secs_f64();

    let format = parse_trace_format(args.opt_or("format", "chrome"))?;
    let out_path = args.opt("out").unwrap_or(match format {
        TraceFormat::Chrome => "vr-trace.json",
        TraceFormat::Jsonl => "vr-trace.jsonl",
    });
    write_trace_export(out_path, format, &data)?;

    let mut out = format!(
        "traced {} under {}: {} engine events, {} records, {} spans -> {out_path} ({})",
        workload.name,
        report.policy,
        report.run_stats.events_processed,
        data.records.len(),
        data.spans.len(),
        format.label(),
    );
    if let Some(profile_path) = args.opt("profile-out") {
        // events/sec needs a wall clock, which the deterministic trace
        // crate refuses to read — the CLI times the run and injects it.
        let mut text = data.profile.to_json(Some(wall_secs)).render();
        text.push('\n');
        std::fs::write(profile_path, text)
            .map_err(|e| ArgError(format!("cannot write {profile_path}: {e}")))?;
        out.push_str(&format!("; profile -> {profile_path}"));
    }
    if let Some(warning) = truncation_warning(&report) {
        eprintln!("{warning}");
        out.push('\n');
        out.push_str(&warning);
    }
    Ok(out)
}

/// `vrecon lint`: run the static analyzer over the workspace.
///
/// Succeeds (with a summary line) only when no diagnostic fires; any
/// finding renders rustc-style and fails the command.
pub fn lint(args: &Args) -> Result<String, ArgError> {
    let root = match args.opt("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot read current directory: {e}")))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                ArgError("no [workspace] Cargo.toml above the current directory; use --root".into())
            })?
        }
    };
    let report = lint_workspace(&root).map_err(ArgError)?;
    let rendered = match args.opt_or("format", "text") {
        "json" => report.render_json(),
        "text" => report.render_text(),
        other => return Err(ArgError(format!("--format must be text|json, got {other}"))),
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(ArgError(rendered))
    }
}

/// `vrecon analyze`: run the cross-crate semantic analyzer (taint +
/// concurrency rules) over the workspace.
///
/// Mirrors [`lint`]: succeeds only when no diagnostic fires. `--sarif-out`
/// writes a SARIF report alongside whatever `--format` prints.
pub fn analyze(args: &Args) -> Result<String, ArgError> {
    let root = match args.opt("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot read current directory: {e}")))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                ArgError("no [workspace] Cargo.toml above the current directory; use --root".into())
            })?
        }
    };
    let report = analyze_workspace(&root).map_err(ArgError)?;
    if let Some(path) = args.opt("sarif-out") {
        std::fs::write(path, report.render_sarif())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    let rendered = match args.opt_or("format", "text") {
        "json" => report.render_json(),
        "sarif" => report.render_sarif(),
        "text" => report.render_text(),
        other => {
            return Err(ArgError(format!(
                "--format must be text|json|sarif, got {other}"
            )))
        }
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(ArgError(rendered))
    }
}

/// `vrecon fuzz` — differential fuzzing of engine vs oracle vs auditor.
///
/// Succeeds (summary on stdout) when every scenario agrees; on divergence
/// the shrunk reproducers are written under `--failures-dir` and the
/// command fails with the summary.
pub fn fuzz(args: &Args) -> Result<String, ArgError> {
    let opts = FuzzOptions {
        iters: args.opt_parse::<u64>("iters")?.unwrap_or(100),
        seed: args.opt_parse::<u64>("seed")?.unwrap_or(1),
        jobs: args.opt_parse::<usize>("jobs")?.unwrap_or(0),
        skew: if args.flag("broken-oracle") {
            OracleSkew::CompletionOffByOne
        } else {
            OracleSkew::None
        },
    };
    let failures_dir = args.opt_or("failures-dir", "fuzz-failures");
    let outcome = run_fuzz(&opts);
    let mut output = outcome.summary();
    if !outcome.failures.is_empty() {
        std::fs::create_dir_all(failures_dir)
            .map_err(|e| ArgError(format!("cannot create {failures_dir}: {e}")))?;
        for failure in &outcome.failures {
            let path = format!(
                "{failures_dir}/fuzz-{}-{}.txt",
                opts.seed, failure.iteration
            );
            let mut text = failure.scenario.render();
            text.push_str("# divergence:\n");
            for line in failure.detail.lines() {
                text.push_str("#   ");
                text.push_str(line);
                text.push('\n');
            }
            std::fs::write(&path, text)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            output.push_str(&format!("  wrote {path}\n"));
        }
    }
    if outcome.is_clean() {
        Ok(output)
    } else {
        Err(ArgError(output))
    }
}

/// Builds a [`ServeConfig`] from CLI flags. Separate from [`serve`]
/// itself so the mapping is testable — `serve` never returns.
fn serve_config(args: &Args) -> Result<ServeConfig, ArgError> {
    if args.flag("no-cache") && args.opt("cache-dir").is_some() {
        return Err(ArgError(
            "--no-cache and --cache-dir are mutually exclusive".to_owned(),
        ));
    }
    let mut config = ServeConfig {
        addr: args.opt_or("addr", "127.0.0.1:7071").to_owned(),
        jobs: args.opt_parse::<usize>("jobs")?.unwrap_or(0),
        cache_dir: if args.flag("no-cache") {
            None
        } else {
            Some(
                args.opt("cache-dir")
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(vr_runner::default_cache_dir),
            )
        },
        ..ServeConfig::default()
    };
    if let Some(n) = args.opt_parse::<usize>("max-inflight")? {
        if n == 0 {
            return Err(ArgError("--max-inflight must be positive".to_owned()));
        }
        config.max_inflight = n;
    }
    if let Some(n) = args.opt_parse::<usize>("hot-cap")? {
        config.hot_cap = n;
    }
    if let Some(ms) = args.opt_parse::<u64>("read-timeout-ms")? {
        if ms == 0 {
            return Err(ArgError("--read-timeout-ms must be positive".to_owned()));
        }
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = args.opt_parse::<usize>("max-conns")? {
        if n == 0 {
            return Err(ArgError("--max-conns must be positive".to_owned()));
        }
        config.max_conns = n;
    }
    if let Some(path) = args.opt("request-log") {
        let log = JsonlRequestLog::create(std::path::Path::new(path))
            .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
        config.hook = Arc::new(log);
    }
    Ok(config)
}

/// `vrecon serve` — what-if scheduling as an HTTP service over the
/// result cache. Prints the bound address, then serves until killed.
pub fn serve(args: &Args) -> Result<String, ArgError> {
    let config = serve_config(args)?;
    let cache_note = match &config.cache_dir {
        Some(dir) => format!("cache {}", dir.display()),
        None => "cache disabled".to_owned(),
    };
    let handle =
        vr_serve::start(config).map_err(|e| ArgError(format!("cannot start server: {e}")))?;
    // Scripts wait for this line before sending requests, so it must hit
    // stdout now, not when the (never-returning) command completes.
    println!(
        "vrecon serve listening on http://{} ({cache_note})",
        handle.addr()
    );
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `vrecon loadgen` — drive a running serve instance through the phased
/// benchmark; print, write, or baseline-check the resulting document.
pub fn loadgen(args: &Args) -> Result<String, ArgError> {
    let mut config = LoadgenConfig::default();
    if let Some(addr) = args.opt("addr") {
        config.addr = addr
            .parse()
            .map_err(|e| ArgError(format!("bad --addr {addr}: {e}")))?;
    }
    if let Some(n) = args.opt_parse::<usize>("specs")? {
        if n == 0 {
            return Err(ArgError("--specs must be positive".to_owned()));
        }
        config.specs = n;
    }
    if let Some(n) = args.opt_parse::<usize>("warm")? {
        config.warm_requests = n;
    }
    if let Some(n) = args.opt_parse::<usize>("concurrency")? {
        if n == 0 {
            return Err(ArgError("--concurrency must be positive".to_owned()));
        }
        config.concurrency = n;
    }
    if let Some(seed) = args.opt_parse::<u64>("seed")? {
        config.seed = seed;
    }
    if let Some(n) = args.opt_parse::<usize>("followers")? {
        config.followers = n;
    }
    if let Some(n) = args.opt_parse::<usize>("heavy-jobs")? {
        config.heavy_jobs = n;
    }
    // Resolve and load the baseline before generating any load, so a
    // typo'd path fails fast instead of after a minutes-long run.
    let tolerance = args.opt_parse::<f64>("tolerance")?.unwrap_or(0.9);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(ArgError(format!(
            "--tolerance must be in [0, 1), got {tolerance}"
        )));
    }
    let baseline = match args.opt("check") {
        Some(path) => {
            let raw = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            let doc = vr_simcore::jsonio::Json::parse(&raw)
                .map_err(|e| ArgError(format!("{path} is not valid JSON: {e}")))?;
            Some((path, doc))
        }
        None if args.opt("tolerance").is_some() => {
            return Err(ArgError("--tolerance requires --check".to_owned()))
        }
        None => None,
    };
    let doc = run_loadgen(&config).map_err(ArgError)?;
    let mut text = doc.render();
    text.push('\n');
    let mut notes = Vec::new();
    if let Some(path) = args.opt("out") {
        std::fs::write(path, &text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        notes.push(format!("wrote {path}"));
    }
    if let Some((path, baseline)) = baseline {
        check_against(&baseline, &doc, tolerance).map_err(|e| {
            ArgError(format!(
                "loadgen baseline check against {path} failed:\n{e}"
            ))
        })?;
        notes.push(format!(
            "baseline check passed against {path} (tolerance {tolerance})"
        ));
    }
    if notes.is_empty() {
        // No sink requested: the document itself is the output.
        Ok(text.trim_end().to_owned())
    } else {
        Ok(format!("loadgen: {}", notes.join("; ")))
    }
}

/// `vrecon spec` — render one fuzzer-generated scenario spec: the wire
/// format `serve` accepts and `run --spec` replays.
pub fn spec(args: &Args) -> Result<String, ArgError> {
    let seed = args.opt_parse::<u64>("seed")?.unwrap_or(42);
    let iter = args.opt_parse::<u64>("iter")?.unwrap_or(0);
    let scenario = generate(seed, iter);
    let text = scenario.render();
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "wrote scenario spec (seed {seed}, iter {iter}, {} nodes, {} jobs) to {path}",
                scenario.nodes.len(),
                scenario.jobs.len()
            ))
        }
        None => Ok(text.trim_end().to_owned()),
    }
}

/// Dispatches a subcommand.
pub fn dispatch(subcommand: &str, args: &Args) -> Result<String, ArgError> {
    match subcommand {
        "gen" => gen(args),
        "inspect" => inspect(args),
        "run" => run(args),
        "compare" => compare(args),
        "sweep" => sweep(args),
        "trace" => trace(args),
        "lint" => lint(args),
        "analyze" => analyze(args),
        "fuzz" => fuzz(args),
        "serve" => serve(args),
        "loadgen" => loadgen(args),
        "spec" => spec(args),
        other => Err(ArgError(format!("unknown subcommand {other}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::units::Bytes;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(
            tokens.iter().copied(),
            &["netram", "csv", "log", "audit", "no-cache", "broken-oracle"],
        )
        .unwrap()
    }

    #[test]
    fn fuzz_subcommand_is_clean_and_deterministic() {
        let one = dispatch(
            "fuzz",
            &args(&["--iters", "3", "--seed", "1", "--jobs", "1"]),
        )
        .unwrap();
        let four = dispatch(
            "fuzz",
            &args(&["--iters", "3", "--seed", "1", "--jobs", "4"]),
        )
        .unwrap();
        assert_eq!(one, four);
        assert!(one.contains("divergences=0"), "{one}");
    }

    #[test]
    fn fuzz_broken_oracle_fails_and_writes_reproducers() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-fuzz-{}", std::process::id()));
        let dir_str = dir.to_str().unwrap();
        let err = dispatch(
            "fuzz",
            &args(&[
                "--iters",
                "2",
                "--seed",
                "1",
                "--jobs",
                "2",
                "--failures-dir",
                dir_str,
                "--broken-oracle",
            ]),
        )
        .unwrap_err();
        assert!(err.0.contains("divergences="), "{err}");
        assert!(!err.0.contains("divergences=0"), "{err}");
        let written: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(!written.is_empty(), "no reproducer files written");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn level_and_policy_parsing() {
        assert_eq!(parse_level("1").unwrap(), TraceLevel::Light);
        assert_eq!(parse_level("5").unwrap(), TraceLevel::HighlyIntensive);
        assert!(parse_level("6").is_err());
        assert_eq!(
            parse_policy("vrecon").unwrap(),
            (PolicyKind::VReconfiguration, ParamBag::new())
        );
        assert_eq!(
            parse_policy("suspend").unwrap(),
            (PolicyKind::SuspendLargest, ParamBag::new())
        );
        assert!(parse_policy("magic").is_err());
        // Registry names work alongside the historical short names, with an
        // optional parameter bag after a colon.
        assert_eq!(
            parse_policy("g-loadsharing").unwrap(),
            (PolicyKind::GLoadSharing, ParamBag::new())
        );
        assert_eq!(
            parse_policy("malleable:max_step=2").unwrap(),
            (
                PolicyKind::Malleable,
                ParamBag::new().with("max_step", 2u32)
            )
        );
        assert_eq!(
            parse_policy("fractional:oversub=1.5").unwrap(),
            (PolicyKind::Fractional, ParamBag::new().with("oversub", 1.5))
        );
        // Unknown knobs are rejected at the flag, naming the offender.
        let err = parse_policy("gls:max_step=2").unwrap_err();
        assert!(err.0.contains("max_step"), "{}", err.0);
        assert!(parse_policy("malleable:max_step").is_err());
    }

    #[test]
    fn lint_subcommand_reports_clean_workspace() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let out = dispatch("lint", &args(&["--root", root])).unwrap();
        assert!(out.contains("0 diagnostic(s)"), "unexpected output: {out}");
        assert!(dispatch("lint", &args(&["--root", root, "--format", "yaml"])).is_err());
    }

    #[test]
    fn analyze_subcommand_reports_clean_workspace() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let out = dispatch("analyze", &args(&["--root", root])).unwrap();
        assert!(out.contains("0 diagnostic(s)"), "unexpected output: {out}");
        let sarif = dispatch("analyze", &args(&["--root", root, "--format", "sarif"])).unwrap();
        assert!(sarif.contains("\"2.1.0\""), "unexpected output: {sarif}");
        assert!(dispatch("analyze", &args(&["--root", root, "--format", "yaml"])).is_err());
    }

    #[test]
    fn cluster_parsing_with_truncation_and_growth() {
        let c = parse_cluster(&args(&["--cluster", "cluster1", "--nodes", "4"])).unwrap();
        assert_eq!(c.size(), 4);
        assert_eq!(c.nodes[0].memory.user, Bytes::from_mb(384));
        assert!(parse_cluster(&args(&["--cluster", "weird"])).is_err());
        assert!(parse_cluster(&args(&["--nodes", "0"])).is_err());
        // Growth past the paper's 32 workstations repeats the node list
        // cyclically, so a heterogeneous cluster keeps its mix at any size.
        let base = parse_cluster(&args(&["--cluster", "cluster2"])).unwrap();
        let big = parse_cluster(&args(&["--cluster", "cluster2", "--nodes", "999"])).unwrap();
        assert_eq!(big.size(), 999);
        for (i, node) in big.nodes.iter().enumerate() {
            assert_eq!(node.memory.user, base.nodes[i % base.size()].memory.user);
        }
    }

    #[test]
    fn gen_inspect_run_compare_round_trip() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vrt");
        let path_str = path.to_str().unwrap();
        // gen (small synthetic via app group level 1 but scaled tiny for speed)
        let msg = gen(&args(&[
            "--group", "app", "--level", "1", "--scale", "0.02", "--out", path_str,
        ]))
        .unwrap();
        assert!(msg.contains("App-Trace-1"), "{msg}");
        let msg = inspect(&args(&[path_str])).unwrap();
        assert!(msg.contains("359 jobs"), "{msg}");
        let msg = run(&args(&[
            path_str, "--policy", "gls", "--nodes", "8", "--csv",
        ]))
        .unwrap();
        assert!(msg.contains("avg_slowdown"), "{msg}");
        let msg = compare(&args(&[path_str, "--nodes", "8"])).unwrap();
        assert!(msg.contains("average slowdown"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_fault_plan_and_audit() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.vrt");
        let trace_str = trace_path.to_str().unwrap();
        gen(&args(&[
            "--group", "app", "--level", "1", "--scale", "0.02", "--out", trace_str,
        ]))
        .unwrap();
        let plan_path = dir.join("plan.txt");
        std::fs::write(
            &plan_path,
            "# one crash plus flaky migrations\ncrash node=1 at=50 restart_after=30\nmigration-failure p=0.3\n",
        )
        .unwrap();
        let plan_str = plan_path.to_str().unwrap();
        let msg = run(&args(&[
            trace_str,
            "--policy",
            "vrecon",
            "--nodes",
            "8",
            "--fault-plan",
            plan_str,
            "--audit",
        ]))
        .unwrap();
        assert!(msg.contains("faults: 1 crashes (1 restarts)"), "{msg}");
        assert!(msg.contains("audit: clean"), "{msg}");
        // A bogus plan is rejected with a parse diagnostic.
        std::fs::write(&plan_path, "crash node=x at=50\n").unwrap();
        let err = run(&args(&[trace_str, "--fault-plan", plan_str])).unwrap_err();
        assert!(err.0.contains("not a valid fault plan"), "{}", err.0);
        // A plan crashing a node outside the cluster fails validation.
        std::fs::write(&plan_path, "crash node=99 at=50\n").unwrap();
        let err = run(&args(&[
            trace_str,
            "--nodes",
            "8",
            "--fault-plan",
            plan_str,
        ]))
        .unwrap_err();
        assert!(err.0.contains("invalid configuration"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_rejects_bad_group() {
        assert!(sweep(&args(&["--group", "weird"])).is_err());
        // Positional group names go through the same validation.
        assert!(sweep(&args(&["weird"])).is_err());
        // Mixing positional groups with --group is ambiguous.
        let err = sweep(&args(&["spec", "--group", "app"])).unwrap_err();
        assert!(err.0.contains("not both"), "{}", err.0);
    }

    #[test]
    fn trace_subcommand_writes_deterministic_parseable_traces() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chrome = dir.join("t.json");
        let chrome_str = chrome.to_str().unwrap();
        let profile = dir.join("p.json");
        let profile_str = profile.to_str().unwrap();
        let base = [
            "app",
            "--level",
            "1",
            "--nodes",
            "8",
            "--out",
            chrome_str,
            "--profile-out",
            profile_str,
        ];
        let msg = trace(&args(&base)).unwrap();
        assert!(msg.contains("spans ->"), "{msg}");
        let first = std::fs::read(&chrome).unwrap();
        let doc = vr_simcore::jsonio::Json::parse(std::str::from_utf8(&first).unwrap()).unwrap();
        assert!(
            doc.get("traceEvents")
                .and_then(vr_simcore::jsonio::Json::as_arr)
                .is_some_and(|events| !events.is_empty()),
            "chrome trace has events"
        );
        let prof =
            vr_simcore::jsonio::Json::parse(&std::fs::read_to_string(&profile).unwrap()).unwrap();
        assert!(prof.get("events_per_sec").is_some(), "profile has rate");
        // Byte-identity across reruns (the determinism contract).
        trace(&args(&base)).unwrap();
        assert_eq!(first, std::fs::read(&chrome).unwrap());
        // JSONL export: every line parses.
        let jsonl_path = dir.join("t.jsonl");
        let jsonl_str = jsonl_path.to_str().unwrap();
        trace(&args(&[
            "app", "--level", "1", "--nodes", "8", "--format", "jsonl", "--out", jsonl_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(text.lines().count() > 1);
        for line in text.lines() {
            vr_simcore::jsonio::Json::parse(line).unwrap();
        }
        assert!(trace(&args(&["app", "--format", "yaml"])).is_err());
        assert!(trace(&args(&["weird"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_runs_warn_loudly() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vrt");
        let path_str = path.to_str().unwrap();
        gen(&args(&[
            "--group", "app", "--level", "1", "--scale", "0.02", "--out", path_str,
        ]))
        .unwrap();
        // A 1-second horizon cannot drain this trace: the warning fires.
        let msg = run(&args(&[
            path_str,
            "--policy",
            "gls",
            "--nodes",
            "8",
            "--max-sim-time",
            "1",
        ]))
        .unwrap();
        assert!(
            msg.contains("WARNING: horizon-truncated run"),
            "missing warning: {msg}"
        );
        // A drained run stays clean.
        let msg = run(&args(&[path_str, "--policy", "gls", "--nodes", "8"])).unwrap();
        assert!(!msg.contains("WARNING"), "unexpected warning: {msg}");
        assert!(run(&args(&[path_str, "--max-sim-time", "0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_trace_out_writes_trace_next_to_report() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-traceout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vrt");
        let path_str = path.to_str().unwrap();
        gen(&args(&[
            "--group", "app", "--level", "1", "--scale", "0.02", "--out", path_str,
        ]))
        .unwrap();
        let trace_path = dir.join("out.jsonl");
        let trace_str = trace_path.to_str().unwrap();
        let msg = run(&args(&[
            path_str,
            "--policy",
            "gls",
            "--nodes",
            "8",
            "--trace-out",
            trace_str,
            "--trace-format",
            "jsonl",
        ]))
        .unwrap();
        assert!(msg.contains("trace:"), "{msg}");
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let header = vr_simcore::jsonio::Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            header
                .get("kind")
                .and_then(vr_simcore::jsonio::Json::as_str),
            Some("vr-trace")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dispatch_rejects_unknown() {
        let err = dispatch("frobnicate", &args(&[])).unwrap_err();
        assert!(err.0.contains("unknown subcommand"));
    }

    #[test]
    fn run_reports_missing_file() {
        let err = run(&args(&["/nonexistent/trace.vrt"])).unwrap_err();
        assert!(err.0.contains("cannot open"));
    }

    #[test]
    fn spec_output_round_trips_through_the_parser() {
        let rendered = dispatch("spec", &args(&["--seed", "7", "--iter", "3"])).unwrap();
        let parsed = CheckScenario::parse(&rendered).unwrap();
        assert_eq!(parsed, generate(7, 3));
    }

    #[test]
    fn run_spec_report_out_matches_the_serve_bytes() {
        let dir = std::env::temp_dir().join(format!("vrecon-cli-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("s.txt");
        let spec_str = spec_path.to_str().unwrap();
        let msg = spec(&args(&["--seed", "7", "--iter", "3", "--out", spec_str])).unwrap();
        assert!(msg.contains("wrote scenario spec"), "{msg}");
        let report_path = dir.join("r.json");
        let report_str = report_path.to_str().unwrap();
        let msg = run(&args(&["--spec", spec_str, "--report-out", report_str])).unwrap();
        assert!(msg.contains("audit: clean"), "{msg}");
        // The written bytes are exactly what a serve response body would
        // carry for the same spec: canonical encoding plus newline.
        let scenario = generate(7, 3);
        let (config, trace) = scenario.to_sim().unwrap();
        let report = Scenario::new(config, Arc::new(trace)).run();
        let want = format!("{}\n", encode_report(&report));
        assert_eq!(std::fs::read_to_string(&report_path).unwrap(), want);
        // --spec and a positional trace file are mutually exclusive.
        let err = run(&args(&["t.vrt", "--spec", spec_str])).unwrap_err();
        assert!(err.0.contains("not both"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_config_maps_flags_and_rejects_contradictions() {
        let config = serve_config(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "3",
            "--cache-dir",
            "/tmp/vr-serve-flag-test",
            "--max-inflight",
            "2",
            "--hot-cap",
            "9",
            "--read-timeout-ms",
            "250",
            "--max-conns",
            "5",
        ]))
        .unwrap();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.jobs, 3);
        assert_eq!(
            config.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/vr-serve-flag-test"))
        );
        assert_eq!(config.max_inflight, 2);
        assert_eq!(config.hot_cap, 9);
        assert_eq!(config.read_timeout, std::time::Duration::from_millis(250));
        assert_eq!(config.max_conns, 5);
        let disabled = serve_config(&args(&["--no-cache"])).unwrap();
        assert!(disabled.cache_dir.is_none());
        assert!(serve_config(&args(&["--no-cache", "--cache-dir", "x"])).is_err());
        assert!(serve_config(&args(&["--max-inflight", "0"])).is_err());
    }

    #[test]
    fn loadgen_rejects_bad_flags_before_touching_the_network() {
        assert!(loadgen(&args(&["--addr", "not-an-addr"])).is_err());
        assert!(loadgen(&args(&["--specs", "0"])).is_err());
        let err = loadgen(&args(&["--addr", "127.0.0.1:1", "--tolerance", "0.5"])).unwrap_err();
        assert!(err.0.contains("requires --check"), "{}", err.0);
    }
}
