//! Offline stand-in for `serde`: marker traits plus the no-op derive
//! re-exports. See `compat/README.md` for why this exists.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// Blanket-implemented so any `T: Serialize` bound is satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
///
/// Blanket-implemented so any `T: Deserialize<'de>` bound is satisfiable.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
