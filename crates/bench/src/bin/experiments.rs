//! Runs the full evaluation — both workload groups, all five traces, both
//! policies — and prints the per-figure tables plus a paper-vs-measured
//! summary. This is the data source for `EXPERIMENTS.md`.
//!
//! The whole 20-scenario matrix executes as **one sweep** on the
//! experiment runner: `--jobs N` sets the worker count (0 = auto),
//! `--no-cache` bypasses the content-addressed result cache. Figure
//! tables on stdout are bit-identical for any `--jobs` value; progress
//! and cache telemetry go to stderr; a machine-readable benchmark record
//! is written to `BENCH_sweep.json` (override with `VR_BENCH_OUT`).

use std::path::Path;

use vr_bench::render::figure_panel;
use vr_bench::{group_plan, pairs_from_results, paper, BenchArgs, Group, PolicyPair};
use vr_metrics::comparison::MetricComparison;
use vr_metrics::table::TextTable;

/// Writes one figure panel's data as a plot-ready CSV file under `dir`.
/// Failures are returned, not printed — `main` surfaces them once.
fn export_csv(
    dir: &Path,
    name: &str,
    pairs: &[PolicyPair],
    metric: impl Fn(&PolicyPair) -> MetricComparison,
) -> Result<(), String> {
    let path = dir.join(format!("{name}.csv"));
    let mut table = TextTable::new(vec![
        "trace",
        "g_loadsharing",
        "v_reconfiguration",
        "reduction_pct",
    ]);
    for pair in pairs {
        let c = metric(pair);
        table.row(vec![
            pair.trace_name.clone(),
            format!("{}", c.baseline),
            format!("{}", c.candidate),
            format!("{:.4}", c.reduction()),
        ]);
    }
    std::fs::write(&path, table.render_csv())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn summary_row(
    table: &mut TextTable,
    artifact: &str,
    pairs: &[PolicyPair],
    quoted: &[paper::Quoted; 5],
    metric: impl Fn(&PolicyPair) -> MetricComparison,
) {
    let measured: Vec<f64> = pairs.iter().map(|p| metric(p).reduction()).collect();
    let wins = measured.iter().filter(|r| **r > 0.0).count();
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    let paper_quoted: Vec<f64> = quoted.iter().flatten().copied().collect();
    let paper_mean = if paper_quoted.is_empty() {
        0.0
    } else {
        paper_quoted.iter().sum::<f64>() / paper_quoted.len() as f64
    };
    table.row(vec![
        artifact.to_owned(),
        format!("{wins}/5"),
        format!("{mean:+.1}%"),
        format!("{paper_mean:+.1}%"),
    ]);
}

fn main() {
    let bench_args = BenchArgs::from_env();
    let results_dir = vr_bench::results_dir().unwrap_or_else(|e| {
        eprintln!("fatal: {e}");
        std::process::exit(1);
    });

    println!("# Full evaluation run\n");
    if results_dir.is_some() {
        println!("(also exporting per-figure CSVs to $VR_RESULTS_DIR)\n");
    }

    // One sweep for the whole matrix: group 1's ten scenarios, then
    // group 2's. Results come back in plan order, so the figure tables
    // below are bit-identical for any --jobs value.
    let mut plan = group_plan(Group::Spec);
    let split = plan.len();
    plan.scenarios.extend(group_plan(Group::App).scenarios);
    let runner = bench_args.runner(true);
    let mut outcome = runner.run(&plan);
    vr_bench::warn_truncated(outcome.results.iter().flatten());

    let bench_out = std::env::var("VR_BENCH_OUT").unwrap_or_else(|_| "BENCH_sweep.json".into());
    if let Err(e) = vr_runner::write_bench_json(Path::new(&bench_out), &outcome) {
        eprintln!("note: cannot write {bench_out}: {e}");
    }
    eprintln!(
        "sweep: {} scenarios on {} workers in {:.2}s (sequential {:.2}s, speedup {:.2}x; \
         cache: {} hits, {} misses)",
        outcome.results.len(),
        outcome.jobs,
        outcome.wall.as_secs_f64(),
        outcome.busy.as_secs_f64(),
        outcome.speedup(),
        outcome.cache.hits,
        outcome.cache.misses,
    );

    let app = pairs_from_results(outcome.results.split_off(split));
    let spec = pairs_from_results(outcome.results);
    let mut export_errors: Vec<String> = Vec::new();
    let mut export = |dir: Option<&Path>,
                      name: &str,
                      pairs: &[PolicyPair],
                      metric: &dyn Fn(&PolicyPair) -> MetricComparison| {
        if let Some(dir) = dir {
            if let Err(e) = export_csv(dir, name, pairs, metric) {
                export_errors.push(e);
            }
        }
    };
    let dir = results_dir.as_deref();

    println!("## Workload group 1 (SPEC 2000, cluster 1)\n");
    println!("```text");
    print!(
        "{}",
        figure_panel(
            "Figure 1 left: total execution times (s)",
            &spec,
            &paper::FIG1_EXEC,
            0,
            |p| p.execution_time()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 1 right: total queuing times (s)",
            &spec,
            &paper::FIG1_QUEUE,
            0,
            |p| p.queue_time()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 2 left: average slowdowns",
            &spec,
            &paper::FIG2_SLOWDOWN,
            2,
            |p| p.slowdown()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 2 right: average idle memory volumes (MB)",
            &spec,
            &paper::FIG2_IDLE,
            0,
            |p| p.idle_memory()
        )
    );
    println!("```\n");
    export(dir, "fig1_exec", &spec, &|p| p.execution_time());
    export(dir, "fig1_queue", &spec, &|p| p.queue_time());
    export(dir, "fig2_slowdown", &spec, &|p| p.slowdown());
    export(dir, "fig2_idle_memory", &spec, &|p| p.idle_memory());

    println!("## Workload group 2 (applications, cluster 2)\n");
    println!("```text");
    print!(
        "{}",
        figure_panel(
            "Figure 3 left: total execution times (s)",
            &app,
            &paper::FIG3_EXEC,
            0,
            |p| p.execution_time()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 3 right: total queuing times (s)",
            &app,
            &paper::FIG3_QUEUE,
            0,
            |p| p.queue_time()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 4 left: average slowdowns",
            &app,
            &paper::FIG4_SLOWDOWN,
            2,
            |p| p.slowdown()
        )
    );
    println!("```\n```text");
    print!(
        "{}",
        figure_panel(
            "Figure 4 right: average job balance skews",
            &app,
            &paper::FIG4_SKEW,
            3,
            |p| p.balance_skew()
        )
    );
    println!("```\n");
    export(dir, "fig3_exec", &app, &|p| p.execution_time());
    export(dir, "fig3_queue", &app, &|p| p.queue_time());
    export(dir, "fig4_slowdown", &app, &|p| p.slowdown());
    export(dir, "fig4_skew", &app, &|p| p.balance_skew());

    if !export_errors.is_empty() {
        // One aggregated note, not one eprintln per row.
        eprintln!(
            "note: {} CSV export(s) failed: {}",
            export_errors.len(),
            export_errors.join("; ")
        );
    }

    println!("## Paper-vs-measured summary (mean reduction across traces)\n");
    let mut table = TextTable::new(vec![
        "artifact",
        "V-R wins",
        "measured mean",
        "paper mean (quoted)",
    ]);
    summary_row(
        &mut table,
        "Fig 1 L: exec time (group 1)",
        &spec,
        &paper::FIG1_EXEC,
        |p| p.execution_time(),
    );
    summary_row(
        &mut table,
        "Fig 1 R: queue time (group 1)",
        &spec,
        &paper::FIG1_QUEUE,
        |p| p.queue_time(),
    );
    summary_row(
        &mut table,
        "Fig 2 L: slowdown (group 1)",
        &spec,
        &paper::FIG2_SLOWDOWN,
        |p| p.slowdown(),
    );
    summary_row(
        &mut table,
        "Fig 2 R: idle memory (group 1)",
        &spec,
        &paper::FIG2_IDLE,
        |p| p.idle_memory(),
    );
    summary_row(
        &mut table,
        "Fig 3 L: exec time (group 2)",
        &app,
        &paper::FIG3_EXEC,
        |p| p.execution_time(),
    );
    summary_row(
        &mut table,
        "Fig 3 R: queue time (group 2)",
        &app,
        &paper::FIG3_QUEUE,
        |p| p.queue_time(),
    );
    summary_row(
        &mut table,
        "Fig 4 L: slowdown (group 2)",
        &app,
        &paper::FIG4_SLOWDOWN,
        |p| p.slowdown(),
    );
    summary_row(
        &mut table,
        "Fig 4 R: balance skew (group 2)",
        &app,
        &paper::FIG4_SKEW,
        |p| p.balance_skew(),
    );
    println!("```text\n{}```\n", table.render());

    println!("## Reconfiguration activity (V-R runs)\n");
    let mut table = TextTable::new(vec![
        "trace",
        "reservations",
        "served",
        "released unused",
        "timed out",
        "blocking detections",
    ]);
    for pair in spec.iter().chain(app.iter()) {
        let r = pair.vr.reservations;
        table.row(vec![
            pair.trace_name.clone(),
            r.started.to_string(),
            r.jobs_served.to_string(),
            r.released_unused.to_string(),
            r.timed_out.to_string(),
            pair.vr.counters.blocking_detections.to_string(),
        ]);
    }
    println!("```text\n{}```", table.render());
}
