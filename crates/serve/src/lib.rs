//! # vr-serve — what-if scheduling as a service
//!
//! A dependency-free HTTP/1.1 front-end over the experiment runner's
//! content-addressed result cache. Clients POST a scenario spec in the
//! fuzzer's replayable text format ([`vr_check::CheckScenario`], the
//! workspace's versioned wire format) to `/run` and receive the
//! deterministic [`vrecon::RunReport`] JSON — byte-identical to what
//! `vrecon run` prints for the same scenario, byte-identical across
//! repeats, worker counts, and server restarts, because the body is
//! either the cache entry itself or the encoding of a deterministic
//! simulation keyed by the same content hash.
//!
//! * [`server`] — accept loop, `/run` pipeline, simulation worker pool.
//!   Three tiers answer a request: in-memory hot LRU, on-disk
//!   [`vr_runner::ResultCache`], fresh simulation. Identical concurrent
//!   requests **coalesce** onto one in-flight run; distinct cold
//!   requests past `max_inflight` are shed with an explicit 503 (and
//!   connections past the connection cap with 429) — the server never
//!   queues work invisibly.
//! * [`http`] — the minimal request reader / response writer, with
//!   explicit limits (408/411/413/431) instead of hung threads.
//! * [`state`] — counters, hot tier, and the in-flight table.
//! * [`hook`] — per-request structured records ([`RequestRecord`]) via
//!   the same hook-seam pattern as `vr-trace`, with a JSONL sink.
//! * [`client`] / [`loadgen`] — the blocking client and the phased load
//!   generator behind `vrecon loadgen` and `BENCH_serve.json`.
//! * [`clock`] — the only module allowed to read the wall clock
//!   (enforced by `vrecon lint`); everything else handles opaque
//!   [`clock::Stopwatch`] values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod clock;
pub mod hook;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod state;

pub use client::{request, ClientResponse};
pub use hook::{JsonlRequestLog, NullHook, Outcome, RequestHook, RequestRecord};
pub use loadgen::{check_against, heavy_scenario, run_loadgen, LoadgenConfig};
pub use server::{start, ServeConfig, ServeState, ServerHandle};
