//! Inter-workstation scheduling policies.
//!
//! The paper's evaluation compares the dynamic load sharing scheme of the
//! authors' ICDCS 2001 system ([`PolicyKind::GLoadSharing`]) with the same
//! scheme augmented by adaptive virtual reconfiguration
//! ([`PolicyKind::VReconfiguration`]). Additional baselines are implemented
//! for ablation: no load sharing at all, random placement, and CPU-only
//! balancing (the "balancing the number of jobs" family the introduction
//! cites).
//!
//! A policy decides *placement* ([`PolicyKind::place`]) from the (possibly
//! stale) global load index; the migration and reconfiguration machinery
//! lives in the simulation driver and is enabled per policy via
//! [`PolicyKind::migrates_on_overload`] / [`PolicyKind::reconfigures`].

use serde::{Deserialize, Serialize};
use std::fmt;
use vr_cluster::job::RunningJob;
use vr_cluster::loadinfo::LoadIndex;
use vr_cluster::node::NodeId;
use vr_simcore::rng::SimRng;

/// The scheduling policies available to a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Every job runs on the workstation it was submitted to; no remote
    /// submission, no migration.
    NoLoadSharing,
    /// Jobs are placed on a uniformly random workstation that has a free
    /// slot, ignoring memory entirely.
    Random,
    /// CPU-only load sharing: place on the node with the fewest active jobs
    /// (job-count balancing, e.g. Zhou et al.'s Utopia family); memory is
    /// ignored and there is no fault-driven migration.
    CpuOnly,
    /// The authors' dynamic load sharing with both CPU and memory
    /// considerations (ICDCS 2001, cited as \[3]): local submission when the
    /// home node has idle memory and a free slot, otherwise remote
    /// submission to the best qualified node; fault-driven preemptive
    /// migration of the most memory-intensive job.
    GLoadSharing,
    /// [`GLoadSharing`](PolicyKind::GLoadSharing) plus the paper's adaptive
    /// and virtual reconfiguration: on blocking, reserve a lightly loaded
    /// workstation and dedicate it to large jobs.
    VReconfiguration,
    /// Weighted CPU+memory load sharing after Zhang, Qu & Xiao (ICDCS
    /// 2000, the paper's ref \[13]): nodes are ranked by a combined load
    /// score mixing job count (CPU pressure) and memory occupancy, instead
    /// of the lexicographic fewest-jobs-first rule of
    /// [`GLoadSharing`](PolicyKind::GLoadSharing). Fault-driven migration
    /// stays enabled; no reconfiguration.
    WeightedCpuMem,
    /// The strawman §1 discusses and rejects: on blocking, *suspend* the
    /// large job (swap it out entirely, freeing its memory, at realistic
    /// swap-transfer cost) "so that the job submissions will not be
    /// blocked". Suspended jobs are resumed only when the cluster has
    /// spare capacity, so under a continuous job flow they starve — the
    /// unfairness the paper's reconfiguration avoids. A job repeatedly
    /// re-suspended is pinned after five suspensions (endless swap churn
    /// of the same peak-sized job is a livelock, not a remedy).
    SuspendLargest,
    /// Malleable scheduling ("Evaluating Malleable Job Scheduling in HPC
    /// Clusters"): jobs may declare a `min..=max` slot-width range
    /// ([`MalleableSpec`]); placement and migration follow
    /// [`GLoadSharing`](PolicyKind::GLoadSharing), and on every load
    /// exchange the policy issues grow directives into idle slots and
    /// shrink directives under queue pressure. A job running at width `w`
    /// holds `w` slots and receives `w` processor-sharing shares. With no
    /// malleable jobs in the trace it behaves exactly like G-Loadsharing.
    ///
    /// [`MalleableSpec`]: vr_cluster::job::MalleableSpec
    Malleable,
    /// Dynamic fractional resource scheduling (Casanova/Stillwell/Vivien):
    /// instead of whole-slot reservation, each workstation's admission cap
    /// is raised to `floor(slots × oversub)` and the processor-sharing
    /// model hands every resident job a fractional CPU share. Placement
    /// and migration follow [`GLoadSharing`](PolicyKind::GLoadSharing);
    /// with `oversub = 1` it is exactly G-Loadsharing.
    Fractional,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::NoLoadSharing => "No-Loadsharing",
            PolicyKind::Random => "Random",
            PolicyKind::CpuOnly => "CPU-Only",
            PolicyKind::GLoadSharing => "G-Loadsharing",
            PolicyKind::VReconfiguration => "V-Reconfiguration",
            PolicyKind::WeightedCpuMem => "Weighted-CPU-Mem",
            PolicyKind::SuspendLargest => "Suspend-Largest",
            PolicyKind::Malleable => "Malleable",
            PolicyKind::Fractional => "Fractional",
        };
        f.write_str(s)
    }
}

/// Where a policy wants a job to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Admit on the submission (home) workstation, free of charge.
    Local(NodeId),
    /// Remote-submit to another workstation (costs `r`).
    Remote(NodeId),
    /// No workstation qualifies: hold the job in the cluster pending queue.
    /// This is the paper's "job submissions ... blocked".
    Blocked,
}

impl PolicyKind {
    /// All policies, baseline-first.
    pub const ALL: [PolicyKind; 9] = [
        PolicyKind::NoLoadSharing,
        PolicyKind::Random,
        PolicyKind::CpuOnly,
        PolicyKind::WeightedCpuMem,
        PolicyKind::GLoadSharing,
        PolicyKind::SuspendLargest,
        PolicyKind::VReconfiguration,
        PolicyKind::Malleable,
        PolicyKind::Fractional,
    ];

    /// `true` if the policy performs fault-driven preemptive migration.
    pub fn migrates_on_overload(self) -> bool {
        matches!(
            self,
            PolicyKind::GLoadSharing
                | PolicyKind::VReconfiguration
                | PolicyKind::SuspendLargest
                | PolicyKind::WeightedCpuMem
                | PolicyKind::Malleable
                | PolicyKind::Fractional
        )
    }

    /// `true` if the policy suspends the most memory-intensive job on
    /// blocking (the §1 strawman).
    pub fn suspends_on_blocking(self) -> bool {
        matches!(self, PolicyKind::SuspendLargest)
    }

    /// `true` if the policy runs the adaptive virtual-reconfiguration
    /// routine on blocking.
    pub fn reconfigures(self) -> bool {
        matches!(self, PolicyKind::VReconfiguration)
    }

    /// Decides where to place a newly submitted (or pending-retried) job.
    ///
    /// `home` is the workstation the user submitted to; `index` is the
    /// cluster's (possibly stale) load index. Randomized policies draw from
    /// `rng`.
    pub fn place(
        self,
        job: &RunningJob,
        home: NodeId,
        index: &LoadIndex,
        rng: &mut SimRng,
    ) -> Placement {
        match self {
            PolicyKind::NoLoadSharing => {
                // Home or nothing; the hard capacity check happens at
                // admission, a bounce lands in the pending queue.
                match index.get(home) {
                    Some(load) if load.has_slot => Placement::Local(home),
                    _ => Placement::Blocked,
                }
            }
            PolicyKind::Random => {
                let candidates: Vec<NodeId> = index
                    .iter()
                    .filter(|e| e.has_slot && !e.reserved)
                    .map(|e| e.node)
                    .collect();
                if candidates.is_empty() {
                    Placement::Blocked
                } else {
                    let pick = *rng.choose(&candidates);
                    if pick == home {
                        Placement::Local(pick)
                    } else {
                        Placement::Remote(pick)
                    }
                }
            }
            PolicyKind::CpuOnly => {
                let best = index
                    .iter()
                    .filter(|e| e.has_slot && !e.reserved)
                    .min_by_key(|e| (e.active_jobs, e.node));
                match best {
                    Some(e) if e.node == home => Placement::Local(home),
                    Some(e) => Placement::Remote(e.node),
                    None => Placement::Blocked,
                }
            }
            PolicyKind::WeightedCpuMem => {
                // Ref [13]: rank every qualified node by a combined score
                // of CPU pressure (active jobs) and memory occupancy
                // (1 - idle/user); a fully used memory weighs like a full
                // slot set.
                let demand = job.current_working_set();
                let score = |e: &vr_cluster::loadinfo::NodeLoad| {
                    let cpu = e.active_jobs as f64;
                    let mem = 1.0 - e.idle_memory.as_u64() as f64 / e.user_memory.as_u64() as f64;
                    cpu + 8.0 * mem
                };
                let best = index
                    .iter()
                    .filter(|e| e.accepts_submissions() && e.idle_memory >= demand)
                    .min_by(|a, b| {
                        score(a)
                            .partial_cmp(&score(b))
                            // vr-lint::allow(panic-in-lib, reason = "comparator contract: placement scores are ratios of finite non-negative loads, never NaN")
                            .expect("scores are never NaN")
                            .then(a.node.cmp(&b.node))
                    });
                match best {
                    Some(e) if e.node == home => Placement::Local(home),
                    Some(e) => Placement::Remote(e.node),
                    None => Placement::Blocked,
                }
            }
            PolicyKind::GLoadSharing
            | PolicyKind::VReconfiguration
            | PolicyKind::SuspendLargest
            | PolicyKind::Malleable
            | PolicyKind::Fractional => {
                // §1: accept locally when the workstation has idle memory
                // and a free job slot; otherwise remote-submit to a lightly
                // loaded workstation with available memory and slots; else
                // block. "Idle memory space" is checked against the job's
                // *currently observed* demand — the scheduler "dynamically
                // monitors ... memory demands of jobs" ([3]); growth beyond
                // it (the unexpectedly large allocations of §1) is what the
                // memory threshold and migrations must then handle.
                let demand = job.current_working_set();
                if index
                    .get(home)
                    .is_some_and(|load| load.accepts_submissions() && load.idle_memory >= demand)
                {
                    return Placement::Local(home);
                }
                // O(log n) bucket probe over the ordered placement index —
                // provably the same winner as the old linear
                // `min_by_key((active_jobs, Reverse(idle_memory), node))`.
                match index.best_destination_for(demand, Some(home)) {
                    Some(dest) => Placement::Remote(dest.node),
                    None => Placement::Blocked,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::cpu::CpuParams;
    use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile};
    use vr_cluster::memory::{FaultModel, MemoryParams};
    use vr_cluster::node::{NodeParams, Workstation};
    use vr_cluster::units::Bytes;
    use vr_simcore::time::{SimSpan, SimTime};

    fn test_job() -> RunningJob {
        RunningJob::new(JobSpec {
            id: JobId(0),
            name: "j".into(),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs(100),
            memory: MemoryProfile::constant(Bytes::from_mb(10)),
            io_rate: 0.0,
            malleable: None,
        })
    }

    /// Builds an index over nodes with the given (jobs, ws_mb) pairs.
    fn index_of(loads: &[(usize, u64)]) -> LoadIndex {
        let nodes: Vec<Workstation> = loads
            .iter()
            .enumerate()
            .map(|(i, &(jobs, ws))| {
                let mut n = Workstation::new(
                    NodeId(i as u32),
                    NodeParams {
                        cpu: CpuParams::with_slots(4),
                        memory: MemoryParams::with_capacity(
                            Bytes::from_mb(128),
                            Bytes::from_mb(512),
                        ),
                        fault_model: FaultModel::default(),
                        protection: Default::default(),
                    },
                );
                for j in 0..jobs {
                    let mut job = test_job();
                    job.spec.id = JobId((i * 100 + j) as u64);
                    job.spec.memory = MemoryProfile::constant(Bytes::from_mb(ws));
                    n.try_admit(job, SimTime::ZERO).unwrap();
                }
                n
            })
            .collect();
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        index
    }

    #[test]
    fn no_load_sharing_sticks_to_home() {
        let index = index_of(&[(0, 0), (3, 10)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::NoLoadSharing.place(&test_job(), NodeId(1), &index, &mut rng);
        assert_eq!(p, Placement::Local(NodeId(1)));
    }

    #[test]
    fn no_load_sharing_blocks_when_home_is_full() {
        let index = index_of(&[(4, 10), (0, 0)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::NoLoadSharing.place(&test_job(), NodeId(0), &index, &mut rng);
        assert_eq!(p, Placement::Blocked);
    }

    #[test]
    fn cpu_only_picks_fewest_jobs_ignoring_memory() {
        // Node 1 has fewer jobs but is memory-saturated; CPU-only picks it
        // anyway.
        let index = index_of(&[(3, 10), (1, 140)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::CpuOnly.place(&test_job(), NodeId(0), &index, &mut rng);
        assert_eq!(p, Placement::Remote(NodeId(1)));
    }

    #[test]
    fn gls_prefers_home_when_qualified() {
        let index = index_of(&[(1, 10), (0, 0)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::GLoadSharing.place(&test_job(), NodeId(0), &index, &mut rng);
        assert_eq!(p, Placement::Local(NodeId(0)));
    }

    #[test]
    fn gls_goes_remote_when_home_is_memory_saturated() {
        // Home node 0 has no idle memory (140 > 128); node 1 qualifies.
        let index = index_of(&[(1, 140), (1, 10)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::GLoadSharing.place(&test_job(), NodeId(0), &index, &mut rng);
        assert_eq!(p, Placement::Remote(NodeId(1)));
    }

    #[test]
    fn gls_blocks_when_nothing_qualifies() {
        let index = index_of(&[(1, 140), (2, 70)]);
        let mut rng = SimRng::seed_from(0);
        let p = PolicyKind::GLoadSharing.place(&test_job(), NodeId(0), &index, &mut rng);
        assert_eq!(p, Placement::Blocked);
    }

    #[test]
    fn random_places_somewhere_with_a_slot() {
        let index = index_of(&[(4, 10), (1, 10), (1, 10)]);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..20 {
            match PolicyKind::Random.place(&test_job(), NodeId(0), &index, &mut rng) {
                Placement::Remote(n) | Placement::Local(n) => {
                    assert_ne!(n, NodeId(0), "node 0 has no slot");
                }
                Placement::Blocked => panic!("slots were available"),
            }
        }
    }

    #[test]
    fn capability_flags() {
        assert!(!PolicyKind::NoLoadSharing.migrates_on_overload());
        assert!(!PolicyKind::CpuOnly.migrates_on_overload());
        assert!(PolicyKind::GLoadSharing.migrates_on_overload());
        assert!(!PolicyKind::GLoadSharing.reconfigures());
        assert!(PolicyKind::VReconfiguration.reconfigures());
        assert!(PolicyKind::SuspendLargest.suspends_on_blocking());
        assert!(!PolicyKind::SuspendLargest.reconfigures());
        assert!(!PolicyKind::VReconfiguration.suspends_on_blocking());
        assert!(PolicyKind::WeightedCpuMem.migrates_on_overload());
        assert!(!PolicyKind::WeightedCpuMem.reconfigures());
        assert!(PolicyKind::Malleable.migrates_on_overload());
        assert!(!PolicyKind::Malleable.reconfigures());
        assert!(PolicyKind::Fractional.migrates_on_overload());
        assert!(!PolicyKind::Fractional.suspends_on_blocking());
        assert_eq!(PolicyKind::ALL.len(), 9);
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(PolicyKind::GLoadSharing.to_string(), "G-Loadsharing");
        assert_eq!(
            PolicyKind::VReconfiguration.to_string(),
            "V-Reconfiguration"
        );
    }

    #[test]
    fn vreconfiguration_places_like_gls() {
        let index = index_of(&[(1, 140), (1, 10)]);
        let mut rng1 = SimRng::seed_from(0);
        let mut rng2 = SimRng::seed_from(0);
        let job = test_job();
        assert_eq!(
            PolicyKind::GLoadSharing.place(&job, NodeId(0), &index, &mut rng1),
            PolicyKind::VReconfiguration.place(&job, NodeId(0), &index, &mut rng2)
        );
    }
}
