//! `vr-analyze` — cross-crate semantic analysis on top of the lexer.
//!
//! Where `vr-lint` judges one token at a time, the rules here need three
//! things the token rules structurally cannot express: *which function*
//! a token lives in ([`crate::syntax`]), *who calls whom* across the
//! workspace ([`crate::callgraph`]), and *which locks are held* at a
//! given point (the guard-liveness model in this module). On that base
//! run two rule families:
//!
//! **Taint / reachability** — `wall-clock-taint` (functions transitively
//! reaching `Instant::now`/`SystemTime::now` outside the declared
//! boundary), `wall-clock-leak` (boundary files re-exporting raw
//! instants), `rng-stream-discipline` (`SimRng::seed_from` outside
//! declared authority files), and `panic-path` (public simulation API
//! reaching documented panics without carrying the `# Panics` contract
//! forward).
//!
//! **Concurrency** — over `runner` and `serve` only: `lock-cycle`
//! (lock-order graph with cycle detection), `blocking-while-locked`
//! (guards held across channel/socket/Condvar/simulation-run blocking),
//! `naked-notify` (Condvar notified without the paired mutex ever
//! held), and `guard-across-callback` (guards held across user hooks).
//!
//! Suppression mirrors `vr-lint`: `// vr-analyze::allow(rule, reason =
//! "...")` is line-local with a mandatory reason, plus three *scoped*
//! directives that feed the rules themselves —
//! `boundary(wall-clock, reason = "...")` marks a file as the clock
//! injection seam, `rng-authority(reason = "...")` marks a file as
//! allowed to mint RNG streams, and `blocking(reason = "...")` declares
//! the function directly below it blocking (for loops that block without
//! a recognizable token, e.g. iterating a channel Receiver). Unused
//! directives are reported (`stale-allow` / `stale-directive`), so the
//! suppression set can never rot silently.
//!
//! Everything is approximate by design: calls resolve by name union (no
//! trait dispatch, no type inference) and macro bodies are opaque. The
//! limits are documented in `ARCHITECTURE.md`; the rules err toward
//! silence on patterns the model cannot see and toward noise on the ones
//! it can, with the reasoned-allow valve for the latter.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::callgraph::{extract_calls, tainted_from, Call, CallKind, FnIndex, FnInfo};
use crate::diag::{json_escape, Diagnostic};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{Role, DETERMINISTIC_CRATES, WALL_CLOCK_ALLOWED};
use crate::syntax::parse_fns;
use crate::{classify, workspace_files};

/// The marker that introduces a directive inside a `//` comment.
const MARKER: &str = "vr-analyze::";

/// Crates whose lock/blocking behaviour is analysed. Everything else is
/// still *indexed* (so calls into it classify correctly) but its own
/// guard usage is out of scope.
const CONCURRENCY_CRATES: &[&str] = &["runner", "serve"];

/// Every semantic rule, with the one-line summary SARIF and the docs
/// share. Meta rules (`stale-allow`, `stale-directive`,
/// `malformed-directive`) are listed too so SARIF consumers can resolve
/// any `ruleId` the analyzer emits.
pub const ANALYZE_RULES: &[(&str, &str)] = &[
    (
        "blocking-while-locked",
        "mutex guard held across a blocking operation",
    ),
    (
        "guard-across-callback",
        "mutex guard held across a user-supplied hook",
    ),
    (
        "lock-cycle",
        "lock acquisition order admits a deadlock cycle",
    ),
    (
        "naked-notify",
        "Condvar notified by a thread that never held the paired mutex",
    ),
    (
        "panic-path",
        "public API reaches a documented panic without a `# Panics` contract",
    ),
    (
        "rng-stream-discipline",
        "SimRng stream minted outside a declared authority file",
    ),
    (
        "wall-clock-leak",
        "wall-clock boundary leaks a raw Instant/SystemTime in a public signature",
    ),
    (
        "wall-clock-taint",
        "function transitively reads the wall clock outside the declared boundary",
    ),
    ("stale-allow", "allow directive that suppressed nothing"),
    ("stale-directive", "scoped directive that affected nothing"),
    ("malformed-directive", "unparseable vr-analyze directive"),
];

/// `true` when `name` is a suppressible (non-meta) analyze rule.
fn is_allow_target(name: &str) -> bool {
    ANALYZE_RULES.iter().take(8).any(|(rule, _)| *rule == name)
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

/// What a well-formed directive asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirectiveKind {
    /// `allow(rule, reason = "...")` — line-local suppression.
    Allow(String),
    /// `boundary(wall-clock, reason = "...")` — this file absorbs
    /// wall-clock taint.
    Boundary,
    /// `rng-authority(reason = "...")` — this file may mint RNG streams.
    RngAuthority,
    /// `blocking(reason = "...")` — the `fn` directly below blocks.
    Blocking,
}

/// A parsed `vr-analyze::` directive (possibly malformed).
#[derive(Debug)]
struct ADirective {
    kind: Option<DirectiveKind>,
    line: u32,
    col: u32,
    /// `Some(why)` when the directive is malformed.
    error: Option<String>,
    used: bool,
}

/// Parses the text after the `vr-analyze::` marker.
fn parse_adirective(rest: &str) -> Result<DirectiveKind, String> {
    let rest = rest.trim_start();
    let open = rest
        .find('(')
        .ok_or_else(|| "expected `name(...)` after `vr-analyze::`".to_owned())?;
    let head = rest[..open].trim();
    let close = rest
        .rfind(')')
        .ok_or_else(|| format!("unclosed `{head}(` directive"))?;
    let body = &rest[open + 1..close];
    match head {
        "allow" => {
            let (rule, rest) = body.split_once(',').ok_or_else(|| {
                "expected `allow(rule, reason = \"...\")` — the reason is mandatory".to_owned()
            })?;
            let rule = rule.trim();
            if !is_allow_target(rule) {
                return Err(format!("unknown analyze rule `{rule}`"));
            }
            parse_reason(rest)?;
            Ok(DirectiveKind::Allow(rule.to_owned()))
        }
        "boundary" => {
            let (what, rest) = body
                .split_once(',')
                .ok_or_else(|| "expected `boundary(wall-clock, reason = \"...\")`".to_owned())?;
            if what.trim() != "wall-clock" {
                return Err(format!(
                    "unknown boundary kind `{}`; only `wall-clock` exists",
                    what.trim()
                ));
            }
            parse_reason(rest)?;
            Ok(DirectiveKind::Boundary)
        }
        "rng-authority" => {
            parse_reason(body)?;
            Ok(DirectiveKind::RngAuthority)
        }
        "blocking" => {
            parse_reason(body)?;
            Ok(DirectiveKind::Blocking)
        }
        other => Err(format!(
            "unknown directive `{other}`; expected allow / boundary / rng-authority / blocking"
        )),
    }
}

/// Parses `reason = "<non-empty>"`.
fn parse_reason(text: &str) -> Result<(), String> {
    let value = text
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "expected `reason = \"...\"`".to_owned())?;
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_owned())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_owned());
    }
    Ok(())
}

/// Extracts this file's directives from its comments.
fn parse_directives(comments: &[lexer::Comment]) -> Vec<ADirective> {
    let mut out = Vec::new();
    for c in comments {
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with(MARKER) {
            continue;
        }
        let mut d = ADirective {
            kind: None,
            line: c.line,
            col: c.col,
            error: None,
            used: false,
        };
        match parse_adirective(&trimmed[MARKER.len()..]) {
            Ok(kind) => d.kind = Some(kind),
            Err(why) => d.error = Some(why),
        }
        out.push(d);
    }
    out
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// The aggregated result of an analysis run.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    /// All findings, sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files analysed.
    pub files_scanned: usize,
    /// Number of functions in the cross-crate index.
    pub fns_indexed: usize,
    /// Well-formed directives seen (all four kinds).
    pub allows: usize,
    /// Of those, how many affected nothing.
    pub stale_allows: usize,
}

impl AnalysisReport {
    /// `true` when nothing fired — the workspace passes.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// rustc-style one-line-per-finding text, with a trailing summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "vr-analyze: {} file(s), {} fn(s) indexed, {} directive(s) ({} stale), {} diagnostic(s)",
            self.files_scanned,
            self.fns_indexed,
            self.allows,
            self.stale_allows,
            self.diagnostics.len()
        ));
        out
    }

    /// Machine-readable JSON (stable field and array order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                d.col,
                json_escape(&d.rule),
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"fns_indexed\": {},\n  \"allows\": {},\n  \"stale_allows\": {}\n}}",
            self.files_scanned, self.fns_indexed, self.allows, self.stale_allows
        ));
        out
    }

    /// SARIF 2.1.0, the minimal shape code-scanning UIs ingest: one run,
    /// one driver, one result per diagnostic with a physical location.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \
             \"name\": \"vr-analyze\",\n      \"rules\": [",
        );
        for (i, (name, summary)) in ANALYZE_RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                json_escape(name),
                json_escape(summary)
            ));
        }
        out.push_str("\n      ]\n    }},\n    \"results\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                 \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
                json_escape(&d.rule),
                json_escape(&d.message),
                json_escape(&d.file),
                d.line,
                d.col
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("]\n  }]\n}");
        out
    }
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Index of the closer matching the opener at `open` (same bracket
/// family only; the token stream is already free of strings/comments).
/// Returns the last index if unbalanced.
fn matching_close(tokens: &[Tok], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the opener matching the closer at `close`, scanning back.
fn matching_open(tokens: &[Tok], close: usize) -> Option<usize> {
    let (o, c) = match tokens[close].text.as_str() {
        ")" => ("(", ")"),
        "]" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        let t = &tokens[k];
        if t.kind == TokKind::Punct {
            if t.text == c {
                depth += 1;
            } else if t.text == o {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Recovers the receiver chain ending at token `last` (the token just
/// before the `.method` being inspected), as a dotted identity string
/// plus the chain's first token index. `self.state.queue` → `queue`
/// (leading `self`/`state` holders are stripped so the same mutex named
/// through different paths compares equal); `deques[me]` → `deques[_]`;
/// `std::io::stderr()` → `std.io.stderr`.
fn receiver_chain(tokens: &[Tok], last: usize) -> Option<(String, usize)> {
    let mut parts: Vec<String> = Vec::new();
    let mut start = last;
    let mut j = last as isize;
    while j >= 0 {
        let t = &tokens[j as usize];
        if t.kind == TokKind::Ident {
            parts.push(t.text.clone());
            start = j as usize;
            if j >= 1 {
                let sep = &tokens[(j - 1) as usize];
                if sep.is_punct(".") || sep.is_punct("::") {
                    j -= 2;
                    continue;
                }
            }
            break;
        } else if t.is_punct("]") {
            let open = matching_open(tokens, j as usize)?;
            parts.push("[_]".to_owned());
            start = open;
            j = open as isize - 1;
        } else if t.is_punct(")") {
            // A call in the chain (`stderr()`); identity is the callee.
            let open = matching_open(tokens, j as usize)?;
            start = open;
            j = open as isize - 1;
            if j < 0 || tokens[j as usize].kind != TokKind::Ident {
                break;
            }
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    let mut kept: &[String] = &parts;
    while kept.len() > 1 && (kept[0] == "self" || kept[0] == "state") {
        kept = &kept[1..];
    }
    let mut chain = String::new();
    for p in kept {
        if p == "[_]" {
            chain.push_str("[_]");
        } else {
            if !chain.is_empty() {
                chain.push('.');
            }
            chain.push_str(p);
        }
    }
    Some((chain, start))
}

// ---------------------------------------------------------------------------
// Per-function concurrency model
// ---------------------------------------------------------------------------

/// A direct `.lock()` site.
#[derive(Debug, Clone)]
struct LockSite {
    /// Receiver identity (`queue`, `deques[_]`, `std.io.stderr`).
    chain: String,
    /// Token index of the `lock` identifier.
    idx: usize,
    line: u32,
    col: u32,
}

/// A guard's live interval, token-index half-open `[start, end)`.
#[derive(Debug, Clone)]
struct GuardSpan {
    /// Binding name for `let` guards; `None` for transients.
    name: Option<String>,
    chain: String,
    start: usize,
    end: usize,
    line: u32,
}

/// A token that blocks the calling thread.
#[derive(Debug, Clone)]
struct BlockTok {
    idx: usize,
    line: u32,
    col: u32,
    /// Human label (`.recv()`, `thread::sleep`, ...).
    what: String,
    /// For `Condvar::wait(guard)`: the chain of the guard it releases.
    releases: Option<String>,
}

/// A resolved call site.
#[derive(Debug, Clone)]
struct SiteCall {
    name: String,
    kind: CallKind,
    idx: usize,
    line: u32,
    col: u32,
    /// Token index of the call's closing `)`.
    arg_end: usize,
    /// Candidate workspace callees (empty ⇒ external leaf).
    callees: Vec<usize>,
}

/// Everything the concurrency rules need to know about one function.
#[derive(Debug, Default)]
struct FnConc {
    locks: Vec<LockSite>,
    guards: Vec<GuardSpan>,
    blocking: Vec<BlockTok>,
    calls: Vec<SiteCall>,
    /// `(cv_chain, guard_name)` at `cv.wait(guard)` sites — used to
    /// infer which mutex a Condvar pairs with.
    wait_pairs: Vec<(String, String)>,
    /// Declared blocking via a `vr-analyze::blocking` directive.
    declared_blocking: bool,
}

/// Method names treated as directly blocking when called with a `.`.
const BLOCKING_METHODS: &[&str] = &[
    "accept",
    "flush",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "write_all",
];

/// End of a `.lock(...)` expression including any trailing
/// `.unwrap()`/`.expect(...)`/`.unwrap_or_else(...)` adapters.
fn lock_expr_end(tokens: &[Tok], lock_idx: usize) -> usize {
    let mut close = matching_close(tokens, lock_idx + 1);
    loop {
        let adapter = tokens.get(close + 1).is_some_and(|t| t.is_punct("."))
            && tokens.get(close + 2).is_some_and(|t| {
                t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("unwrap_or_else")
            })
            && tokens.get(close + 3).is_some_and(|t| t.is_punct("("));
        if !adapter {
            return close;
        }
        close = matching_close(tokens, close + 3);
    }
}

/// Where a *transient* (un-bound) guard created at `expr_end` dies.
/// Models Rust 2021 temporary lifetimes: the temporary lives to the end
/// of its statement, and an `if let`/`while let`/`match` scrutinee
/// temporary lives through the consequent block (plus any `else` arm).
fn transient_end(tokens: &[Tok], from: usize, body_end: usize) -> usize {
    let mut paren = 0i32;
    let mut k = from;
    while k < body_end {
        let t = &tokens[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    paren -= 1;
                    if paren < 0 {
                        return k;
                    }
                }
                "{" if paren == 0 => {
                    let close = matching_close(tokens, k);
                    if tokens.get(close + 1).is_some_and(|n| n.is_ident("else")) {
                        k = close + 2;
                        continue;
                    }
                    return close + 1;
                }
                "}" if paren == 0 => return k,
                ";" if paren == 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    body_end
}

/// Scans one function body into its concurrency model.
fn scan_fn(tokens: &[Tok], body: (usize, usize), calls: Vec<Call>) -> FnConc {
    let (body_start, body_end) = body;
    let mut conc = FnConc::default();

    // Direct lock sites and their guards.
    for i in body_start..body_end {
        let is_lock = tokens[i].is_ident("lock")
            && i >= 1
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        if !is_lock {
            continue;
        }
        let Some((chain, chain_start)) = receiver_chain(tokens, i.saturating_sub(2)) else {
            continue;
        };
        conc.locks.push(LockSite {
            chain: chain.clone(),
            idx: i,
            line: tokens[i].line,
            col: tokens[i].col,
        });
        let expr_end = lock_expr_end(tokens, i);
        // `let [mut] NAME = <chain>.lock()...<adapters>;` binds a guard
        // that lives to its block's end (or an explicit `drop(NAME)`).
        let whole_rhs = tokens.get(expr_end + 1).is_some_and(|t| t.is_punct(";"));
        let let_name = if whole_rhs && chain_start >= 3 && tokens[chain_start - 1].is_punct("=") {
            let name_tok = &tokens[chain_start - 2];
            let let_kw = tokens[chain_start - 3].is_ident("let")
                || (tokens[chain_start - 3].is_ident("mut")
                    && chain_start >= 4
                    && tokens[chain_start - 4].is_ident("let"));
            (name_tok.kind == TokKind::Ident && let_kw).then(|| name_tok.text.clone())
        } else {
            None
        };
        match let_name {
            Some(name) => {
                let mut depth = 0i32;
                let mut end = body_end;
                let mut k = expr_end + 1;
                while k < body_end {
                    let t = &tokens[k];
                    if t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct("}") {
                        depth -= 1;
                        if depth < 0 {
                            end = k;
                            break;
                        }
                    } else if t.is_ident("drop")
                        && tokens.get(k + 1).is_some_and(|n| n.is_punct("("))
                        && tokens.get(k + 2).is_some_and(|n| n.is_ident(&name))
                        && tokens.get(k + 3).is_some_and(|n| n.is_punct(")"))
                    {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                conc.guards.push(GuardSpan {
                    name: Some(name),
                    chain,
                    start: i,
                    end,
                    line: tokens[i].line,
                });
            }
            None => {
                conc.guards.push(GuardSpan {
                    name: None,
                    chain,
                    start: i,
                    end: transient_end(tokens, expr_end + 1, body_end),
                    line: tokens[i].line,
                });
            }
        }
    }

    // Blocking tokens.
    for i in body_start..body_end {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || !tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let after_dot = i >= 1 && tokens[i - 1].is_punct(".");
        let after_path = i >= 1 && tokens[i - 1].is_punct("::");
        let name = t.text.as_str();
        let mut what = None;
        let mut releases = None;
        if after_dot && BLOCKING_METHODS.contains(&name) {
            if name == "wait" || name == "wait_timeout" {
                // `cv.wait(guard)` releases the guard's own mutex; note
                // which one so the holder isn't flagged for it.
                if let Some(arg) = tokens.get(i + 2) {
                    if arg.kind == TokKind::Ident {
                        let arg_name = arg.text.clone();
                        if let Some(g) = conc
                            .guards
                            .iter()
                            .find(|g| g.name.as_deref() == Some(arg_name.as_str()))
                        {
                            releases = Some(g.chain.clone());
                            if let Some((cv, _)) = receiver_chain(tokens, i.saturating_sub(2)) {
                                conc.wait_pairs.push((cv, g.chain.clone()));
                            }
                        }
                    }
                }
                what = Some("Condvar::wait".to_owned());
            } else if name == "join" {
                // Only thread/scope joins take no arguments; `Path::join`
                // and `[str]::join` always do.
                if tokens.get(i + 2).is_some_and(|n| n.is_punct(")")) {
                    what = Some(".join()".to_owned());
                }
            } else {
                what = Some(format!(".{name}()"));
            }
        } else if after_path && name == "sleep" {
            what = Some("thread::sleep".to_owned());
        } else if after_path && name == "connect" && i >= 2 && tokens[i - 2].is_ident("TcpStream") {
            what = Some("TcpStream::connect".to_owned());
        }
        if let Some(what) = what {
            conc.blocking.push(BlockTok {
                idx: i,
                line: t.line,
                col: t.col,
                what,
                releases,
            });
        }
    }

    // Calls, minus Condvar waits (resolving `.wait(guard)` by name union
    // would hit unrelated workspace `wait` methods).
    let carved: BTreeSet<usize> = conc
        .blocking
        .iter()
        .filter(|b| b.releases.is_some())
        .map(|b| b.idx)
        .collect();
    for c in calls {
        if carved.contains(&c.idx) {
            continue;
        }
        // Method calls whose receiver is a guard binding, or whose
        // receiver chain runs through `.lock()`, operate on the *guarded
        // data* — `q.push(..)`, `table.get(..)`, `inner.lock()...len()`.
        // Those are std-collection ops; resolving them by name union
        // would hit unrelated workspace impls and fabricate edges.
        if matches!(c.kind, CallKind::Method) {
            if let Some((chain, _)) = receiver_chain(tokens, c.idx.saturating_sub(2)) {
                let root = chain.split('.').next().unwrap_or("");
                let guard_data = chain.split('.').any(|p| p == "lock")
                    || conc.guards.iter().any(|g| g.name.as_deref() == Some(root));
                if guard_data {
                    continue;
                }
            }
        }
        conc.calls.push(SiteCall {
            name: c.name,
            kind: c.kind,
            idx: c.idx,
            line: c.line,
            col: c.col,
            arg_end: matching_close(tokens, c.idx + 1),
            callees: Vec::new(),
        });
    }
    conc
}

// ---------------------------------------------------------------------------
// The analysis pipeline
// ---------------------------------------------------------------------------

/// Per-file working state.
struct FileData {
    rel: String,
    krate: String,
    role: Role,
    tokens: Vec<Tok>,
    directives: Vec<ADirective>,
    boundary: bool,
    rng_authority: bool,
}

/// A raw finding before suppression.
struct Finding {
    file: usize,
    line: u32,
    col: u32,
    rule: &'static str,
    message: String,
}

/// Analyzes a set of `(workspace-relative path, source)` pairs.
pub fn analyze_sources(sources: &[(String, String)]) -> AnalysisReport {
    let mut files: Vec<FileData> = Vec::new();
    let mut fn_infos: Vec<FnInfo> = Vec::new();
    let mut file_of: Vec<usize> = Vec::new();

    for (rel, src) in sources {
        let lexed = lexer::lex(src);
        let ctx = classify(rel);
        let directives = parse_directives(&lexed.comments);
        let boundary = directives
            .iter()
            .any(|d| d.kind == Some(DirectiveKind::Boundary));
        let rng_authority = directives
            .iter()
            .any(|d| d.kind == Some(DirectiveKind::RngAuthority));
        let file_idx = files.len();
        if !matches!(ctx.role, Role::Test | Role::Example) {
            for item in parse_fns(&lexed) {
                if item.in_test_region || !item.has_body() {
                    continue;
                }
                let file_stem = rel
                    .rsplit('/')
                    .next()
                    .and_then(|f| f.strip_suffix(".rs"))
                    .unwrap_or("")
                    .to_owned();
                fn_infos.push(FnInfo {
                    rel_path: rel.clone(),
                    krate: ctx.krate.clone(),
                    item,
                    file_stem,
                });
                file_of.push(file_idx);
            }
        }
        files.push(FileData {
            rel: rel.clone(),
            krate: ctx.krate,
            role: ctx.role,
            tokens: lexed.tokens,
            directives,
            boundary,
            rng_authority,
        });
    }

    let index = FnIndex::build(fn_infos);
    let n = index.fns.len();

    // Attach `blocking` directives to the fn directly below them.
    let mut declared_blocking: Vec<bool> = vec![false; n];
    for (fi, file) in files.iter_mut().enumerate() {
        for d in &mut file.directives {
            if d.kind != Some(DirectiveKind::Blocking) {
                continue;
            }
            for (id, info) in index.fns.iter().enumerate() {
                if file_of[id] == fi && (info.item.line == d.line || info.item.line == d.line + 1) {
                    declared_blocking[id] = true;
                    d.used = true;
                }
            }
        }
    }

    // Scan every indexed fn: concurrency model + resolved calls.
    let mut conc: Vec<FnConc> = Vec::with_capacity(n);
    for (id, info) in index.fns.iter().enumerate() {
        let tokens = &files[file_of[id]].tokens;
        let calls = extract_calls(tokens, info.item.body);
        let mut c = scan_fn(tokens, info.item.body, calls);
        c.declared_blocking = declared_blocking[id];
        for call in &mut c.calls {
            let raw = Call {
                kind: call.kind.clone(),
                name: call.name.clone(),
                idx: call.idx,
                line: call.line,
                col: call.col,
            };
            call.callees = index.resolve(&raw, info);
        }
        conc.push(c);
    }

    // Callers map, for the taint rules.
    let mut callers_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    // A second map restricted to statically-named calls (`f(..)`,
    // `Type::f(..)`, `self::f(..)`) — no `.method()` edges. Panic-path
    // uses this one: a panic reached through a plain method call is the
    // receiver *type's* documented contract, visible at the call site;
    // pulling it through name-union method edges drowned the rule in
    // std-collection lookalikes (`.get`, `.push`, `.index`).
    let mut static_callers_of: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (id, c) in conc.iter().enumerate() {
        for call in &c.calls {
            for &callee in &call.callees {
                callers_of.entry(callee).or_default().push(id);
                if !matches!(call.kind, CallKind::Method) {
                    static_callers_of.entry(callee).or_default().push(id);
                }
            }
        }
    }

    let mut findings: Vec<Finding> = Vec::new();

    run_wall_clock_rules(&index, &files, &file_of, &conc, &callers_of, &mut findings);
    run_panic_path(&index, &files, &file_of, &static_callers_of, &mut findings);
    run_rng_discipline(&index, &files, &file_of, &mut findings);
    run_concurrency_rules(&index, &files, &file_of, &conc, &mut findings);

    assemble_report(files, findings, index.fns.len())
}

// ---------------------------------------------------------------------------
// Taint rules
// ---------------------------------------------------------------------------

/// `Instant::now` / `SystemTime::now` in a body.
fn reads_clock(tokens: &[Tok], body: (usize, usize)) -> bool {
    (body.0..body.1).any(|i| {
        (tokens[i].is_ident("Instant") || tokens[i].is_ident("SystemTime"))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("now"))
    })
}

fn run_wall_clock_rules(
    index: &FnIndex,
    files: &[FileData],
    file_of: &[usize],
    _conc: &[FnConc],
    callers_of: &BTreeMap<usize, Vec<usize>>,
    findings: &mut Vec<Finding>,
) {
    // Sources live only in crates where vr-lint already bans raw clock
    // reads: in `bench`/`cli`/`runner`/`lint`, `Instant::now` is the
    // sanctioned way to measure the host, and seeding taint there made
    // every orchestration entry point glow. The taint rule's job is the
    // *unsanctioned* residue — clock reads inside the simulation tier
    // and the serve layer outside the declared boundary file.
    let sources: Vec<usize> = (0..index.fns.len())
        .filter(|&id| {
            let info = &index.fns[id];
            !WALL_CLOCK_ALLOWED.contains(&info.krate.as_str())
                && reads_clock(&files[file_of[id]].tokens, info.item.body)
        })
        .collect();
    let via = tainted_from(&sources, callers_of, |id| files[file_of[id]].boundary);
    for (&id, &through) in &via {
        let info = &index.fns[id];
        let file = &files[file_of[id]];
        if file.boundary || WALL_CLOCK_ALLOWED.contains(&file.krate.as_str()) {
            continue;
        }
        let message = if through == id {
            format!(
                "`{}` reads the wall clock directly; route timing through the \
                 declared boundary or add `vr-analyze::boundary(wall-clock, ...)` \
                 with a reason",
                info.item.name
            )
        } else {
            format!(
                "`{}` transitively reaches the wall clock via `{}`; route timing \
                 through the declared boundary instead",
                info.item.name, index.fns[through].item.name
            )
        };
        findings.push(Finding {
            file: file_of[id],
            line: info.item.line,
            col: info.item.col,
            rule: "wall-clock-taint",
            message,
        });
    }

    // Boundary files must keep raw instants out of their public surface.
    for (id, info) in index.fns.iter().enumerate() {
        let file = &files[file_of[id]];
        if !file.boundary || !info.item.is_pub {
            continue;
        }
        let (s, e) = info.item.sig;
        let leaks = (s..e)
            .any(|i| file.tokens[i].is_ident("Instant") || file.tokens[i].is_ident("SystemTime"));
        if leaks {
            findings.push(Finding {
                file: file_of[id],
                line: info.item.line,
                col: info.item.col,
                rule: "wall-clock-leak",
                message: format!(
                    "boundary fn `{}` names a raw `Instant`/`SystemTime` in its public \
                     signature; wrap it so callers cannot mint or compare instants",
                    info.item.name
                ),
            });
        }
    }
}

/// Panic-bearing token in a body (the set the `# Panics` convention
/// documents: explicit aborts plus assert!/unwrap/expect).
fn has_panic_token(tokens: &[Tok], body: (usize, usize)) -> bool {
    (body.0..body.1).any(|i| {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            return false;
        }
        match t.text.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne" => tokens.get(i + 1).is_some_and(|n| n.is_punct("!")),
            "unwrap" | "expect" => {
                i >= 1
                    && tokens[i - 1].is_punct(".")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            }
            _ => false,
        }
    })
}

fn run_panic_path(
    index: &FnIndex,
    files: &[FileData],
    file_of: &[usize],
    callers_of: &BTreeMap<usize, Vec<usize>>,
    findings: &mut Vec<Finding>,
) {
    // Sources are *declared* panickers: a panic token in the body AND a
    // `# Panics` doc section. Undocumented panics are vr-lint's turf
    // (`panic-in-lib`), and its allow reasons assert unreachability —
    // treating those as sources would re-litigate every settled allow.
    let source_set: BTreeSet<usize> = (0..index.fns.len())
        .filter(|&id| {
            let info = &index.fns[id];
            info.item.doc_panics
                && DETERMINISTIC_CRATES.contains(&info.krate.as_str())
                && has_panic_token(&files[file_of[id]].tokens, info.item.body)
        })
        .collect();
    let sources: Vec<usize> = source_set.iter().copied().collect();
    // A caller that documents `# Panics` itself carries the contract
    // forward explicitly — taint is absorbed there.
    let via = tainted_from(&sources, callers_of, |id| {
        index.fns[id].item.doc_panics && !source_set.contains(&id)
    });
    for (&id, &through) in &via {
        let info = &index.fns[id];
        if source_set.contains(&id) || info.item.doc_panics || !info.item.is_pub {
            continue;
        }
        if !DETERMINISTIC_CRATES.contains(&info.krate.as_str()) {
            continue;
        }
        if files[file_of[id]].role != Role::Lib {
            continue;
        }
        findings.push(Finding {
            file: file_of[id],
            line: info.item.line,
            col: info.item.col,
            rule: "panic-path",
            message: format!(
                "pub fn `{}` can reach a documented panic via `{}` but has no \
                 `# Panics` section; document the contract or handle the error",
                info.item.name, index.fns[through].item.name
            ),
        });
    }
}

fn run_rng_discipline(
    index: &FnIndex,
    files: &[FileData],
    file_of: &[usize],
    findings: &mut Vec<Finding>,
) {
    for (id, info) in index.fns.iter().enumerate() {
        let file = &files[file_of[id]];
        if file.rng_authority
            || file.role != Role::Lib
            || !DETERMINISTIC_CRATES.contains(&file.krate.as_str())
        {
            continue;
        }
        let (s, e) = info.item.body;
        for i in s..e {
            let seeds = file.tokens[i].is_ident("SimRng")
                && file.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && file
                    .tokens
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("seed_from"))
                && file.tokens.get(i + 3).is_some_and(|t| t.is_punct("("));
            if seeds {
                let t = &file.tokens[i];
                findings.push(Finding {
                    file: file_of[id],
                    line: t.line,
                    col: t.col,
                    rule: "rng-stream-discipline",
                    message: format!(
                        "`SimRng::seed_from` in `{}` mints a fresh RNG stream; seed only \
                         in files declaring `vr-analyze::rng-authority` so streams cannot \
                         silently fork (fork an existing stream instead)",
                        info.item.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrency rules
// ---------------------------------------------------------------------------

/// Crate-qualified lock identity.
fn lock_id(krate: &str, chain: &str) -> String {
    format!("{krate}/{chain}")
}

fn run_concurrency_rules(
    index: &FnIndex,
    files: &[FileData],
    file_of: &[usize],
    conc: &[FnConc],
    findings: &mut Vec<Finding>,
) {
    let n = index.fns.len();

    // Fixpoint 1: which fns block (directly, by declaration, or through
    // a resolved call).
    let mut blocking: Vec<bool> = (0..n)
        .map(|id| !conc[id].blocking.is_empty() || conc[id].declared_blocking)
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if blocking[id] {
                continue;
            }
            let reaches = conc[id]
                .calls
                .iter()
                .any(|c| c.callees.iter().any(|&g| blocking[g]));
            if reaches {
                blocking[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Fixpoint 2: the may-acquire lock set of every fn.
    let mut acquires: Vec<BTreeSet<String>> = (0..n)
        .map(|id| {
            conc[id]
                .locks
                .iter()
                .map(|l| lock_id(&index.fns[id].krate, &l.chain))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut gained: Vec<String> = Vec::new();
            for c in &conc[id].calls {
                for &g in &c.callees {
                    for l in &acquires[g] {
                        if !acquires[id].contains(l) {
                            gained.push(l.clone());
                        }
                    }
                }
            }
            if !gained.is_empty() {
                acquires[id].extend(gained);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Condvar → mutex pairing, inferred from every wait site.
    let mut cv_pairs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, c) in conc.iter().enumerate() {
        for (cv, lock) in &c.wait_pairs {
            cv_pairs
                .entry(lock_id(&index.fns[id].krate, cv))
                .or_default()
                .insert(lock.clone());
        }
    }

    // The lock-order graph: edge A → B with an example site.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32)> = BTreeMap::new();

    for (id, c) in conc.iter().enumerate() {
        let info = &index.fns[id];
        let file = &files[file_of[id]];
        let in_scope = CONCURRENCY_CRATES.contains(&file.krate.as_str());
        let krate = &info.krate;

        for g in &c.guards {
            let held = lock_id(krate, &g.chain);
            // Nested direct lock sites.
            for l in &c.locks {
                if l.idx <= g.start || l.idx >= g.end {
                    continue;
                }
                let inner = lock_id(krate, &l.chain);
                if inner == held {
                    if in_scope {
                        findings.push(Finding {
                            file: file_of[id],
                            line: l.line,
                            col: l.col,
                            rule: "lock-cycle",
                            message: format!(
                                "`{}` re-locks `{}` while the guard taken at line {} is \
                                 still held — self-deadlock on a non-reentrant mutex",
                                info.item.name, g.chain, g.line
                            ),
                        });
                    }
                } else {
                    edges
                        .entry((held.clone(), inner))
                        .or_insert((file_of[id], l.line, l.col));
                }
            }
            // Blocking tokens under the guard.
            if in_scope {
                for b in &c.blocking {
                    if b.idx <= g.start || b.idx >= g.end {
                        continue;
                    }
                    if b.releases.as_deref() == Some(g.chain.as_str()) {
                        continue; // `cv.wait(guard)` releases this lock
                    }
                    let message = match &b.releases {
                        Some(other) => format!(
                            "`Condvar::wait` in `{}` releases `{}` but the guard of \
                             `{}` taken at line {} stays held for the whole sleep",
                            info.item.name, other, g.chain, g.line
                        ),
                        None => format!(
                            "`{}` blocks in `{}` while the guard of `{}` taken at \
                             line {} is held; drop the guard first",
                            b.what, info.item.name, g.chain, g.line
                        ),
                    };
                    findings.push(Finding {
                        file: file_of[id],
                        line: b.line,
                        col: b.col,
                        rule: "blocking-while-locked",
                        message,
                    });
                }
            }
            // Calls under the guard: blocking callees, transitive lock
            // acquisitions, and user hooks.
            for call in &c.calls {
                if call.idx <= g.start || call.idx >= g.end {
                    continue;
                }
                if in_scope {
                    if let Some(&blk) = call.callees.iter().find(|&&x| blocking[x]) {
                        findings.push(Finding {
                            file: file_of[id],
                            line: call.line,
                            col: call.col,
                            rule: "blocking-while-locked",
                            message: format!(
                                "`{}` calls `{}` (blocking, defined in {}) while the \
                                 guard of `{}` taken at line {} is held",
                                info.item.name, call.name, index.fns[blk].rel_path, g.chain, g.line
                            ),
                        });
                    }
                    let hooky = call.name.starts_with("on_")
                        || receiver_chain(&file.tokens, call.idx.saturating_sub(2))
                            .is_some_and(|(chain, _)| chain.contains("hook"));
                    if hooky && call.kind == CallKind::Method {
                        findings.push(Finding {
                            file: file_of[id],
                            line: call.line,
                            col: call.col,
                            rule: "guard-across-callback",
                            message: format!(
                                "`{}` invokes a user hook while the guard of `{}` taken \
                                 at line {} is held; a re-entrant hook deadlocks",
                                info.item.name, g.chain, g.line
                            ),
                        });
                    }
                }
                for &callee in &call.callees {
                    for inner in &acquires[callee] {
                        if *inner == held {
                            if in_scope {
                                findings.push(Finding {
                                    file: file_of[id],
                                    line: call.line,
                                    col: call.col,
                                    rule: "lock-cycle",
                                    message: format!(
                                        "`{}` calls `{}` which may re-lock `{}` while \
                                         its guard is still held",
                                        info.item.name, call.name, g.chain
                                    ),
                                });
                            }
                        } else {
                            edges.entry((held.clone(), inner.clone())).or_insert((
                                file_of[id],
                                call.line,
                                call.col,
                            ));
                        }
                    }
                }
            }
        }

        // A `.lock()` *inside a blocking call's argument list* creates a
        // temporary guard that lives exactly as long as the call —
        // `render(&mut stderr().lock(), ..)` holds the lock for the
        // whole blocking render. The guard-interval checks above miss it
        // because the guard starts after the call token.
        if in_scope {
            for call in &c.calls {
                let Some(&blk) = call.callees.iter().find(|&&x| blocking[x]) else {
                    continue;
                };
                for l in &c.locks {
                    if call.idx < l.idx && l.idx < call.arg_end {
                        findings.push(Finding {
                            file: file_of[id],
                            line: l.line,
                            col: l.col,
                            rule: "blocking-while-locked",
                            message: format!(
                                "`{}` passes a fresh `{}` guard into `{}` (blocking, \
                                 defined in {}); the lock is held for the whole call — \
                                 pass the unlocked handle and lock inside",
                                info.item.name, l.chain, call.name, index.fns[blk].rel_path
                            ),
                        });
                    }
                }
            }
        }

        // Naked notify: a notify site in a fn that never held (or even
        // locked) the mutex the Condvar is paired with loses the race
        // against a checker that has not parked yet.
        if in_scope {
            for i in info.item.body.0..info.item.body.1 {
                let t = &file.tokens[i];
                let is_notify = (t.is_ident("notify_one") || t.is_ident("notify_all"))
                    && i >= 1
                    && file.tokens[i - 1].is_punct(".")
                    && file.tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                if !is_notify {
                    continue;
                }
                let Some((cv, _)) = receiver_chain(&file.tokens, i.saturating_sub(2)) else {
                    continue;
                };
                let Some(paired) = cv_pairs.get(&lock_id(krate, &cv)) else {
                    continue; // pairing unknown — no wait site seen
                };
                let sanctioned = paired.iter().any(|lock| {
                    let guard_held = c
                        .guards
                        .iter()
                        .any(|g| g.chain == *lock && g.start < i && i < g.end);
                    let locked_earlier = c.locks.iter().any(|l| l.chain == *lock && l.idx < i);
                    guard_held || locked_earlier
                });
                if !sanctioned {
                    let locks: Vec<&str> = paired.iter().map(String::as_str).collect();
                    findings.push(Finding {
                        file: file_of[id],
                        line: t.line,
                        col: t.col,
                        rule: "naked-notify",
                        message: format!(
                            "`{}` notifies `{}` without ever locking `{}`; a waiter \
                             between its predicate check and `wait()` misses this \
                             wakeup — lock the mutex (a scoped guard is enough) first",
                            info.item.name,
                            cv,
                            locks.join("`/`")
                        ),
                    });
                }
            }
        }
    }

    // Global cycle detection on the lock-order graph: report each edge
    // whose target can reach back to its source.
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        succ.entry(a.as_str()).or_default().insert(b.as_str());
    }
    for ((a, b), &(file, line, col)) in &edges {
        if reaches(&succ, b, a) {
            findings.push(Finding {
                file,
                line,
                col,
                rule: "lock-cycle",
                message: format!(
                    "acquiring `{b}` while holding `{a}` completes a lock-order \
                     cycle (`{b}` is elsewhere held while taking `{a}`); pick one \
                     global order"
                ),
            });
        }
    }
}

/// Whether `to` is reachable from `from` in the lock-order graph.
fn reaches(succ: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(x) = stack.pop() {
        if x == to {
            return true;
        }
        if !seen.insert(x) {
            continue;
        }
        if let Some(next) = succ.get(x) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Suppression and assembly
// ---------------------------------------------------------------------------

fn assemble_report(
    mut files: Vec<FileData>,
    findings: Vec<Finding>,
    fns_indexed: usize,
) -> AnalysisReport {
    let mut report = AnalysisReport {
        files_scanned: files.len(),
        fns_indexed,
        ..AnalysisReport::default()
    };
    for f in findings {
        let file = &mut files[f.file];
        let suppressed = file.directives.iter_mut().any(|d| {
            let hit = matches!(&d.kind, Some(DirectiveKind::Allow(rule)) if *rule == f.rule)
                && (d.line == f.line || d.line + 1 == f.line);
            if hit {
                d.used = true;
            }
            hit
        });
        if !suppressed {
            report.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line: f.line,
                col: f.col,
                rule: f.rule.to_owned(),
                message: f.message,
            });
        }
    }
    // Scoped directives count as used when their scope did something:
    // a boundary that absorbed or hosted clock reads, an authority file
    // that actually seeds. Mark those here, then audit the rest.
    for file in &mut files {
        let seeds_somewhere = file
            .tokens
            .windows(3)
            .any(|w| w[0].is_ident("SimRng") && w[1].is_punct("::") && w[2].is_ident("seed_from"));
        let clocks_somewhere = file.tokens.windows(3).any(|w| {
            (w[0].is_ident("Instant") || w[0].is_ident("SystemTime"))
                && w[1].is_punct("::")
                && w[2].is_ident("now")
        });
        for d in &mut file.directives {
            match &d.kind {
                Some(DirectiveKind::Boundary) if clocks_somewhere => d.used = true,
                Some(DirectiveKind::RngAuthority) if seeds_somewhere => d.used = true,
                _ => {}
            }
        }
    }
    for file in &files {
        for d in &file.directives {
            if let Some(why) = &d.error {
                report.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: d.line,
                    col: d.col,
                    rule: "malformed-directive".to_owned(),
                    message: format!(
                        "{why}; see the directive grammar in ARCHITECTURE.md \
                         (\"Static analysis\")"
                    ),
                });
                continue;
            }
            report.allows += 1;
            if d.used {
                continue;
            }
            report.stale_allows += 1;
            let (rule, message) = match &d.kind {
                Some(DirectiveKind::Allow(rule)) => (
                    "stale-allow",
                    format!("allow({rule}) suppressed nothing; remove the directive"),
                ),
                Some(DirectiveKind::Boundary) => (
                    "stale-directive",
                    "boundary(wall-clock) declared in a file with no clock reads; \
                     remove the directive"
                        .to_owned(),
                ),
                Some(DirectiveKind::RngAuthority) => (
                    "stale-directive",
                    "rng-authority declared in a file that never seeds; remove the \
                     directive"
                        .to_owned(),
                ),
                Some(DirectiveKind::Blocking) | None => (
                    "stale-directive",
                    "blocking directive attaches to no function; place it on the \
                     line directly above a `fn` item"
                        .to_owned(),
                ),
            };
            report.diagnostics.push(Diagnostic {
                file: file.rel.clone(),
                line: d.line,
                col: d.col,
                rule: rule.to_owned(),
                message,
            });
        }
    }
    report.diagnostics.sort_by_key(|d| d.sort_key());
    report
}

/// Analyzes the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<AnalysisReport, String> {
    let mut sources = Vec::new();
    for (abs, rel) in workspace_files(root)? {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(files: &[(&str, &str)]) -> AnalysisReport {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| ((*r).to_owned(), (*s).to_owned()))
            .collect();
        analyze_sources(&owned)
    }

    fn rules_fired(report: &AnalysisReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn directive_grammar() {
        assert!(parse_adirective(r#"allow(lock-cycle, reason = "x")"#).is_ok());
        assert!(parse_adirective(r#"boundary(wall-clock, reason = "x")"#).is_ok());
        assert!(parse_adirective(r#"rng-authority(reason = "x")"#).is_ok());
        assert!(parse_adirective(r#"blocking(reason = "x")"#).is_ok());
        assert!(parse_adirective(r#"allow(lock-cycle)"#).is_err());
        assert!(parse_adirective(r#"allow(not-a-rule, reason = "x")"#).is_err());
        assert!(parse_adirective(r#"boundary(rng, reason = "x")"#).is_err());
        assert!(parse_adirective(r#"forbid(lock-cycle, reason = "x")"#).is_err());
        assert!(parse_adirective(r#"allow(stale-allow, reason = "x")"#).is_err());
    }

    #[test]
    fn receiver_chains() {
        let lexed = lexer::lex(
            "fn f() { self.state.queue.lock(); deques[me].lock(); std::io::stderr().lock(); }",
        );
        let t = &lexed.tokens;
        let dots: Vec<usize> = (0..t.len())
            .filter(|&i| t[i].is_ident("lock") && t[i - 1].is_punct("."))
            .collect();
        let chains: Vec<String> = dots
            .iter()
            .map(|&i| receiver_chain(t, i - 2).map(|(c, _)| c).unwrap_or_default())
            .collect();
        assert_eq!(chains, vec!["queue", "deques[_]", "std.io.stderr"]);
    }

    #[test]
    fn wall_clock_taint_propagates_and_boundary_absorbs() {
        let report = analyze(&[
            (
                "crates/serve/src/clock.rs",
                "// vr-analyze::boundary(wall-clock, reason = \"the seam\")\n\
                 pub struct Stopwatch;\n\
                 impl Stopwatch { pub fn start() -> u64 { Instant::now(); 0 } }\n",
            ),
            (
                "crates/serve/src/good.rs",
                "pub fn timed() -> u64 { Stopwatch::start() }\n",
            ),
            (
                "crates/serve/src/bad.rs",
                "fn raw() -> u64 { Instant::now(); 1 }\npub fn caller() -> u64 { raw() }\n",
            ),
        ]);
        // `timed` is clean (taint absorbed at the boundary); `raw` and
        // `caller` both fire.
        let fired: Vec<(&str, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect();
        assert_eq!(
            fired,
            vec![("wall-clock-taint", 1), ("wall-clock-taint", 2)],
            "{}",
            report.render_text()
        );
        assert!(report.diagnostics[0].message.contains("directly"));
        assert!(report.diagnostics[1].message.contains("via `raw`"));
    }

    #[test]
    fn wall_clock_leak_catches_raw_instant_in_boundary_signature() {
        let report = analyze(&[(
            "crates/serve/src/clock.rs",
            "// vr-analyze::boundary(wall-clock, reason = \"the seam\")\n\
             pub fn now_raw() -> Instant { Instant::now() }\n",
        )]);
        assert_eq!(rules_fired(&report), vec!["wall-clock-leak"]);
    }

    #[test]
    fn rng_discipline_requires_authority() {
        let src = "pub fn fresh() -> SimRng { SimRng::seed_from(7) }\n";
        let report = analyze(&[("crates/core/src/x.rs", src)]);
        assert_eq!(rules_fired(&report), vec!["rng-stream-discipline"]);
        let authority =
            format!("// vr-analyze::rng-authority(reason = \"the root seeder\")\n{src}");
        let report = analyze(&[("crates/core/src/x.rs", authority.as_str())]);
        assert!(report.is_clean(), "{}", report.render_text());
        // Outside the deterministic set the rule does not apply.
        let report = analyze(&[("crates/runner/src/x.rs", src)]);
        assert!(report.is_clean());
    }

    #[test]
    fn panic_path_follows_documented_panics_only() {
        let report = analyze(&[(
            "crates/core/src/x.rs",
            "/// Divides.\n\
             ///\n\
             /// # Panics\n\
             /// When `b` is zero.\n\
             pub fn div(a: u64, b: u64) -> u64 { assert!(b != 0); a / b }\n\
             pub fn undocumented(a: u64) -> u64 { div(a, 2) }\n\
             /// Doc'd.\n\
             ///\n\
             /// # Panics\n\
             /// See `div`.\n\
             pub fn documented(a: u64) -> u64 { div(a, 2) }\n\
             pub fn shielded(a: u64) -> u64 { documented(a, ) }\n",
        )]);
        // `undocumented` fires; `documented` carries the contract, and
        // `shielded` sits behind that absorption.
        let fired: Vec<(&str, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect();
        assert_eq!(fired, vec![("panic-path", 6)], "{}", report.render_text());
    }

    #[test]
    fn blocking_while_locked_direct_and_transitive() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "fn slow() { stream.write_all(b); }\n\
             pub fn direct() { let g = q.lock().unwrap_or_else(e); ch.recv(); }\n\
             pub fn indirect() { let g = q.lock().unwrap_or_else(e); slow(); }\n\
             pub fn fine() { let g = q.lock().unwrap_or_else(e); drop(g); ch.recv(); }\n",
        )]);
        let fired: Vec<(&str, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect();
        assert_eq!(
            fired,
            vec![("blocking-while-locked", 2), ("blocking-while-locked", 3)],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn declared_blocking_and_lock_in_arg_span() {
        // `render` blocks only by declaration (a channel for-loop has no
        // blocking token). `sweep` holds a guard across the call;
        // `paint` mints a guard *inside* the call's argument list.
        let report = analyze(&[
            (
                "crates/runner/src/telemetry.rs",
                "// vr-analyze::blocking(reason = \"drains a channel\")\n\
                 pub fn render(rx: R, out: W) { for e in rx { } }\n",
            ),
            (
                "crates/runner/src/runner.rs",
                "pub fn sweep() { let g = q.lock().unwrap_or_else(e); render(rx, out); }\n\
                 pub fn paint() { render(rx, &mut stderr().lock()); }\n",
            ),
        ]);
        let fired: Vec<(&str, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.rule.as_str(), d.line))
            .collect();
        assert_eq!(
            fired,
            vec![("blocking-while-locked", 1), ("blocking-while-locked", 2)],
            "{}",
            report.render_text()
        );
        assert!(report.diagnostics[1].message.contains("fresh"));
    }

    #[test]
    fn condvar_wait_releases_its_own_lock_but_not_others() {
        let ok = "pub fn worker() { let mut q = queue.lock().unwrap_or_else(e); \
                  loop { q = cv.wait(q).unwrap_or_else(e); } }\n";
        let report = analyze(&[("crates/serve/src/x.rs", ok)]);
        assert!(report.is_clean(), "{}", report.render_text());
        let bad = "pub fn worker() { let d = done.lock().unwrap_or_else(e); \
                   let mut q = queue.lock().unwrap_or_else(e); \
                   q = cv.wait(q).unwrap_or_else(e); }\n";
        let report = analyze(&[("crates/serve/src/x.rs", bad)]);
        let fired = rules_fired(&report);
        assert!(
            fired.contains(&"blocking-while-locked"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn lock_cycle_detected_across_functions() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "pub fn ab() { let a = alpha.lock().unwrap_or_else(e); \
             let b = beta.lock().unwrap_or_else(e); }\n\
             pub fn ba() { let b = beta.lock().unwrap_or_else(e); \
             let a = alpha.lock().unwrap_or_else(e); }\n",
        )]);
        let fired = rules_fired(&report);
        assert_eq!(
            fired,
            vec!["lock-cycle", "lock-cycle"],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn self_relock_is_immediate_cycle() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "pub fn twice() { let a = q.lock().unwrap_or_else(e); \
             let b = q.lock().unwrap_or_else(e); }\n",
        )]);
        assert_eq!(rules_fired(&report), vec!["lock-cycle"]);
        assert!(report.diagnostics[0].message.contains("re-locks"));
    }

    #[test]
    fn naked_notify_needs_a_wait_site_to_pair() {
        // worker waits with a `queue` guard; shutdown notifies without
        // ever touching `queue` → finding. A scoped guard fixes it.
        let bad = "pub fn worker() { let mut q = queue.lock().unwrap_or_else(e); \
                   loop { q = queue_cv.wait(q).unwrap_or_else(e); } }\n\
                   pub fn shutdown() { queue_cv.notify_all(); }\n";
        let report = analyze(&[("crates/serve/src/x.rs", bad)]);
        assert_eq!(rules_fired(&report), vec!["naked-notify"]);
        let good = "pub fn worker() { let mut q = queue.lock().unwrap_or_else(e); \
                    loop { q = queue_cv.wait(q).unwrap_or_else(e); } }\n\
                    pub fn shutdown() { { let _g = queue.lock().unwrap_or_else(e); } \
                    queue_cv.notify_all(); }\n";
        let report = analyze(&[("crates/serve/src/x.rs", good)]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn guard_across_callback_fires_on_hooks() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "pub fn f(h: H) { let g = q.lock().unwrap_or_else(e); h.on_request(r); }\n",
        )]);
        let fired = rules_fired(&report);
        assert!(
            fired.contains(&"guard-across-callback"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn allow_suppresses_and_stale_directives_fire() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "// vr-analyze::allow(blocking-while-locked, reason = \"intentional\")\n\
             pub fn f() { let g = q.lock().unwrap_or_else(e); ch.recv(); }\n",
        )]);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.allows, 1);
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "// vr-analyze::allow(lock-cycle, reason = \"nothing here\")\n\
             pub fn f() {}\n\
             // vr-analyze::blocking(reason = \"floats free\")\n\
             struct S;\n",
        )]);
        let fired = rules_fired(&report);
        assert_eq!(fired, vec!["stale-allow", "stale-directive"]);
        assert_eq!(report.stale_allows, 2);
    }

    #[test]
    fn malformed_directives_are_loud() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "// vr-analyze::allow(blocking-while-locked)\npub fn f() {}\n",
        )]);
        assert_eq!(rules_fired(&report), vec!["malformed-directive"]);
    }

    #[test]
    fn test_code_and_test_files_are_out_of_scope() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let g = q.lock().unwrap_or_else(e); \
                   ch.recv(); }\n}\n";
        assert!(analyze(&[("crates/serve/src/x.rs", src)]).is_clean());
        let live = "pub fn f() { let g = q.lock().unwrap_or_else(e); ch.recv(); }\n";
        assert!(analyze(&[("crates/serve/tests/x.rs", live)]).is_clean());
        assert!(!analyze(&[("crates/serve/src/x.rs", live)]).is_clean());
    }

    #[test]
    fn renderers_are_stable() {
        let report = analyze(&[(
            "crates/serve/src/x.rs",
            "pub fn f() { let g = q.lock().unwrap_or_else(e); ch.recv(); }\n",
        )]);
        let text = report.render_text();
        assert!(text.contains("error[blocking-while-locked]"), "{text}");
        assert!(text.contains("vr-analyze: 1 file(s)"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"version\": 1"), "{json}");
        assert!(json.contains("\"fns_indexed\": 1"), "{json}");
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(
            sarif.contains("\"ruleId\": \"blocking-while-locked\""),
            "{sarif}"
        );
        assert!(sarif.contains("\"startLine\""), "{sarif}");
    }
}
