//! Time-stamped measurement series.
//!
//! The paper samples cluster-wide gauges (total idle memory, per-node active
//! job counts) every second and averages them over the whole run, noting that
//! the averages are insensitive to the sampling interval (§4.1). [`TimeSeries`]
//! stores such samples and provides both the plain sample average the paper
//! uses and an exact time-weighted average for validation.

use serde::{Deserialize, Serialize};

use crate::stats::Summary;
use crate::time::{SimSpan, SimTime};

/// An append-only series of `(time, value)` samples with non-decreasing
/// timestamps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previous sample or `value` is NaN.
    pub fn push(&mut self, time: SimTime, value: f64) {
        assert!(!value.is_nan(), "TimeSeries observed NaN at {time}");
        if let Some(&(last, _)) = self.points.last() {
            assert!(
                time >= last,
                "TimeSeries samples must be time-ordered: {time} after {last}"
            );
        }
        self.points.push((time, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Plain arithmetic mean of the sampled values (the paper's measurement).
    pub fn sample_average(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.values().sum::<f64>() / self.points.len() as f64
        }
    }

    /// Exact time-weighted average, treating the series as a step function
    /// that holds each value until the next sample.
    ///
    /// Returns the plain average when fewer than two samples exist.
    pub fn time_weighted_average(&self) -> f64 {
        if self.points.len() < 2 {
            return self.sample_average();
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            area += w[0].1 * dt;
        }
        // vr-lint::allow(panic-in-lib, reason = "the windows(2) accumulation above proves points is non-empty here")
        let total = (self.points.last().unwrap().0 - self.points[0].0).as_secs_f64();
        // vr-lint::allow(float-eq, reason = "exact zero-guard before division by total elapsed time")
        if total == 0.0 {
            self.sample_average()
        } else {
            area / total
        }
    }

    /// Re-samples the step function at a fixed `interval`, starting at the
    /// first sample's timestamp.
    ///
    /// Used to reproduce the paper's interval-insensitivity check (1 s vs
    /// 10 s vs 30 s vs 1 min give "almost identical average values").
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn resample(&self, interval: SimSpan) -> TimeSeries {
        assert!(!interval.is_zero(), "resample interval must be non-zero");
        let mut out = TimeSeries::new();
        let Some(&(start, _)) = self.points.first() else {
            return out;
        };
        // vr-lint::allow(panic-in-lib, reason = "guarded by the let-else on first() above")
        let end = self.points.last().unwrap().0;
        let mut t = start;
        let mut idx = 0;
        while t <= end {
            while idx + 1 < self.points.len() && self.points[idx + 1].0 <= t {
                idx += 1;
            }
            out.push(t, self.points[idx].1);
            match t.checked_add(interval) {
                Some(next) => t = next,
                None => break,
            }
        }
        out
    }

    /// Summary statistics over the sampled values.
    pub fn summary(&self) -> Summary {
        Summary::of(self.values())
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn sample_average_is_plain_mean() {
        let s: TimeSeries = [(t(0), 2.0), (t(1), 4.0), (t(2), 6.0)]
            .into_iter()
            .collect();
        assert_eq!(s.sample_average(), 4.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_series_averages_zero() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.sample_average(), 0.0);
        assert_eq!(s.time_weighted_average(), 0.0);
        assert!(s.last().is_none());
    }

    #[test]
    fn time_weighted_average_weights_by_duration() {
        // Value 10 for 9 seconds, then 0 for 1 second.
        let s: TimeSeries = [(t(0), 10.0), (t(9), 0.0), (t(10), 0.0)]
            .into_iter()
            .collect();
        assert!((s.time_weighted_average() - 9.0).abs() < 1e-12);
        // The plain sample average would be misleadingly low.
        assert!((s.sample_average() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(4), 1.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut s = TimeSeries::new();
        s.push(t(5), 1.0);
        s.push(t(5), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn resample_holds_step_values() {
        let s: TimeSeries = [(t(0), 1.0), (t(3), 5.0), (t(10), 9.0)]
            .into_iter()
            .collect();
        let r = s.resample(SimSpan::from_secs(2));
        let got: Vec<(u64, f64)> = r
            .iter()
            .map(|(tt, v)| (tt.as_micros() / 1_000_000, v))
            .collect();
        assert_eq!(
            got,
            vec![(0, 1.0), (2, 1.0), (4, 5.0), (6, 5.0), (8, 5.0), (10, 9.0)]
        );
    }

    #[test]
    fn resample_interval_insensitivity_on_smooth_series() {
        // A densely sampled, slowly varying gauge: coarser resampling should
        // barely move the average — the property the paper relies on.
        let s: TimeSeries = (0..3600)
            .map(|i| (t(i), 100.0 + (i as f64 / 600.0).sin()))
            .collect();
        let fine = s.sample_average();
        for secs in [10u64, 30, 60] {
            let coarse = s.resample(SimSpan::from_secs(secs)).sample_average();
            assert!(
                (fine - coarse).abs() / fine < 0.001,
                "interval {secs}s moved the average from {fine} to {coarse}"
            );
        }
    }

    #[test]
    fn summary_and_last() {
        let s: TimeSeries = [(t(0), 1.0), (t(1), 3.0)].into_iter().collect();
        assert_eq!(s.summary().max, 3.0);
        assert_eq!(s.last(), Some((t(1), 3.0)));
    }
}
