//! Per-interval activity records — the paper's trace format.
//!
//! §3.3.2: "Following the header item, the execution activities of the job
//! are recorded in a time interval of every 10 ms including CPU cycles, the
//! memory demand/allocation, buffer cache allocation, number of I/Os, and
//! others." §3.1 describes the kernel instrumentation that produced those
//! records from dedicated runs.
//!
//! [`ActivityRecord`] reproduces that representation: a fixed sampling
//! interval and one [`ActivitySample`] per interval. Two conversions close
//! the loop with the catalog representation:
//!
//! * [`ActivityRecord::record_dedicated`] plays the role of the kernel
//!   instrumentation — it "runs" a [`JobSpec`] in a dedicated environment
//!   and samples its memory demand and I/O activity every interval;
//! * [`ActivityRecord::to_job_spec`] reconstructs a replayable job from a
//!   record, coalescing consecutive equal memory samples into phases.
//!
//! Round-tripping a job through a record preserves its CPU work, peak
//! demand, and phase structure up to the sampling resolution — tested
//! below and property-tested in the crate's test suite.

use serde::{Deserialize, Serialize};
use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile};
use vr_cluster::units::Bytes;
use vr_simcore::time::{SimSpan, SimTime};

/// The paper's sampling interval: 10 ms.
pub const PAPER_INTERVAL: SimSpan = SimSpan::from_millis(10);

/// One sampling interval's worth of observed activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivitySample {
    /// Memory demand at the sample instant.
    pub memory: Bytes,
    /// I/O operations issued during the interval.
    pub io_ops: f64,
}

/// A dedicated-run activity record for one program: header data plus one
/// sample per interval, as the paper's kernel facility produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityRecord {
    /// Program name.
    pub name: String,
    /// Workload class.
    pub class: JobClass,
    /// Sampling interval (10 ms in the paper).
    pub interval: SimSpan,
    /// Per-interval samples covering the whole dedicated run.
    pub samples: Vec<ActivitySample>,
}

/// Error constructing or converting an activity record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivityError {
    /// The record has no samples.
    Empty,
    /// The sampling interval is zero.
    ZeroInterval,
}

impl std::fmt::Display for ActivityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivityError::Empty => f.write_str("activity record has no samples"),
            ActivityError::ZeroInterval => f.write_str("activity sampling interval is zero"),
        }
    }
}

impl std::error::Error for ActivityError {}

impl ActivityRecord {
    /// "Instruments" a dedicated run of `spec`: samples its memory demand
    /// and I/O activity every `interval` of progress. In a dedicated
    /// environment wall time equals CPU progress (no competition, no
    /// faults — §3.2 measured exactly this way), so sampling progress is
    /// sampling time.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::ZeroInterval`] if `interval` is zero.
    pub fn record_dedicated(spec: &JobSpec, interval: SimSpan) -> Result<Self, ActivityError> {
        if interval.is_zero() {
            return Err(ActivityError::ZeroInterval);
        }
        let total = spec.cpu_work.as_micros();
        let step = interval.as_micros();
        let intervals = total.div_ceil(step).max(1);
        let samples = (0..intervals)
            .map(|i| {
                let progress = SimSpan::from_micros(i * step);
                ActivitySample {
                    memory: spec.memory.working_set_at(progress),
                    io_ops: spec.io_rate * interval.as_secs_f64(),
                }
            })
            .collect();
        Ok(ActivityRecord {
            name: spec.name.clone(),
            class: spec.class,
            interval,
            samples,
        })
    }

    /// Total CPU work covered by the record.
    pub fn cpu_work(&self) -> SimSpan {
        self.interval * self.samples.len() as u64
    }

    /// Peak memory demand across all samples.
    ///
    /// # Panics
    ///
    /// Panics if the record is empty.
    pub fn peak_memory(&self) -> Bytes {
        self.samples
            .iter()
            .map(|s| s.memory)
            .max()
            // vr-lint::allow(panic-in-lib, reason = "documented invariant: parsed records always hold at least one sample")
            .expect("peak_memory of an empty record")
    }

    /// Mean I/O rate (operations per progress second).
    pub fn io_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: f64 = self.samples.iter().map(|s| s.io_ops).sum();
        total / self.cpu_work().as_secs_f64()
    }

    /// Reconstructs a replayable [`JobSpec`] from this record, coalescing
    /// runs of identical memory samples into profile phases.
    ///
    /// # Errors
    ///
    /// Returns [`ActivityError::Empty`] for an empty record.
    pub fn to_job_spec(&self, id: JobId, submit: SimTime) -> Result<JobSpec, ActivityError> {
        if self.samples.is_empty() {
            return Err(ActivityError::Empty);
        }
        let mut phases: Vec<(SimSpan, Bytes)> = Vec::new();
        let mut current = self.samples[0].memory;
        for (i, sample) in self.samples.iter().enumerate().skip(1) {
            if sample.memory != current {
                phases.push((self.interval * i as u64, current));
                current = sample.memory;
            }
        }
        phases.push((SimSpan::MAX, current));
        let memory = MemoryProfile::from_phases(phases)
            // vr-lint::allow(panic-in-lib, reason = "the boundaries were coalesced strictly increasing just above")
            .expect("coalesced boundaries are strictly increasing");
        Ok(JobSpec {
            id,
            name: self.name.clone(),
            class: self.class,
            submit,
            cpu_work: self.cpu_work(),
            memory,
            io_rate: self.io_rate(),
            malleable: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(phases: Vec<(u64, u64)>, work_secs: u64, io_rate: f64) -> JobSpec {
        let phases = phases
            .into_iter()
            .map(|(until, mb)| (SimSpan::from_secs(until), Bytes::from_mb(mb)))
            .chain(std::iter::once((SimSpan::MAX, Bytes::from_mb(50))))
            .collect();
        JobSpec {
            id: JobId(0),
            name: "recorded".into(),
            class: JobClass::MemoryIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs(work_secs),
            memory: MemoryProfile::from_phases(phases).unwrap(),
            io_rate,
            malleable: None,
        }
    }

    #[test]
    fn recording_covers_the_whole_run_at_paper_resolution() {
        let spec = spec(vec![(10, 20), (30, 80)], 60, 2.0);
        let record = ActivityRecord::record_dedicated(&spec, PAPER_INTERVAL).unwrap();
        assert_eq!(record.samples.len(), 6000); // 60 s / 10 ms
        assert_eq!(record.cpu_work(), SimSpan::from_secs(60));
        assert_eq!(record.peak_memory(), Bytes::from_mb(80));
        assert!((record.io_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_preserves_work_and_phases() {
        let original = spec(vec![(10, 20), (30, 80)], 60, 2.0);
        let record = ActivityRecord::record_dedicated(&original, PAPER_INTERVAL).unwrap();
        let rebuilt = record.to_job_spec(JobId(9), SimTime::from_secs(5)).unwrap();
        assert_eq!(rebuilt.id, JobId(9));
        assert_eq!(rebuilt.submit, SimTime::from_secs(5));
        assert_eq!(rebuilt.cpu_work, original.cpu_work);
        assert_eq!(rebuilt.max_working_set(), original.max_working_set());
        // The phase structure survives at sampling resolution.
        for probe_secs in [0u64, 5, 15, 29, 31, 59] {
            let p = SimSpan::from_secs(probe_secs);
            assert_eq!(
                rebuilt.memory.working_set_at(p),
                original.memory.working_set_at(p),
                "mismatch at {probe_secs}s"
            );
        }
        assert!((rebuilt.io_rate - original.io_rate).abs() < 1e-9);
    }

    #[test]
    fn flat_job_coalesces_to_one_phase() {
        let original = spec(vec![], 10, 0.0);
        let record = ActivityRecord::record_dedicated(&original, PAPER_INTERVAL).unwrap();
        let rebuilt = record.to_job_spec(JobId(0), SimTime::ZERO).unwrap();
        assert_eq!(rebuilt.memory.phases().len(), 1);
    }

    #[test]
    fn validation_errors() {
        let s = spec(vec![], 10, 0.0);
        assert_eq!(
            ActivityRecord::record_dedicated(&s, SimSpan::ZERO).unwrap_err(),
            ActivityError::ZeroInterval
        );
        let empty = ActivityRecord {
            name: "x".into(),
            class: JobClass::CpuIntensive,
            interval: PAPER_INTERVAL,
            samples: vec![],
        };
        assert_eq!(
            empty.to_job_spec(JobId(0), SimTime::ZERO).unwrap_err(),
            ActivityError::Empty
        );
    }

    #[test]
    fn coarse_intervals_still_cover_the_run() {
        let original = spec(vec![(10, 20)], 61, 1.0);
        let record = ActivityRecord::record_dedicated(&original, SimSpan::from_secs(2)).unwrap();
        // 61 s at 2 s intervals: 31 samples (ceil).
        assert_eq!(record.samples.len(), 31);
        assert_eq!(record.cpu_work(), SimSpan::from_secs(62));
    }

    #[test]
    fn table_programs_survive_instrumentation_round_trip() {
        // Every catalog program can be instrumented and replayed.
        use vr_simcore::rng::SimRng;
        let mut rng = SimRng::seed_from(1);
        for program in crate::spec2000::programs()
            .into_iter()
            .chain(crate::apps::programs())
        {
            let spec = program.instantiate(JobId(1), SimTime::ZERO, &mut rng, 0.0);
            // A coarser interval keeps the test fast; resolution only
            // affects phase-boundary rounding.
            let record =
                ActivityRecord::record_dedicated(&spec, SimSpan::from_millis(500)).unwrap();
            let rebuilt = record.to_job_spec(JobId(1), SimTime::ZERO).unwrap();
            assert_eq!(
                rebuilt.max_working_set(),
                spec.max_working_set(),
                "{}",
                program.name
            );
            let drift = (rebuilt.cpu_work.as_secs_f64() - spec.cpu_work.as_secs_f64()).abs();
            assert!(drift <= 0.5, "{}: cpu work drifted {drift}s", program.name);
        }
    }
}
