//! Engine micro-bench suite: engine vs reference oracle (what the
//! production event queue, load index, and incremental bookkeeping buy
//! over the naive O(n²) re-scan `vr-check` uses for differential
//! testing), plus per-level engine replays of the exact scenarios that
//! back `BENCH_engine.json` (the `engine_bench` binary emits the JSON
//! artifact; this bench keeps the same hot paths visible to
//! `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vr_bench::{SIM_SEED, TRACE_SEED};
use vr_check::{run_oracle, OracleSkew};
use vr_cluster::params::ClusterParams;
use vr_simcore::rng::SimRng;
use vr_workload::trace::{spec_trace_scaled, TraceLevel, SPEC_LIFETIME_SCALE};
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn setup() -> (SimConfig, vr_workload::trace::Trace) {
    let trace = spec_trace_scaled(TraceLevel::Normal, &mut SimRng::seed_from(42), 0.05);
    let mut cluster = ClusterParams::cluster1();
    cluster.nodes.truncate(8);
    let config = SimConfig::new(cluster, PolicyKind::VReconfiguration).with_seed(7);
    (config, trace)
}

fn engine_vs_oracle(c: &mut Criterion) {
    let (config, trace) = setup();
    let mut group = c.benchmark_group("engine_vs_oracle");
    group.sample_size(10);
    group.bench_function("engine_spec_normal_8_nodes", |b| {
        b.iter(|| {
            let report = Simulation::new(config.clone()).run(&trace);
            black_box(report.finished_at)
        })
    });
    group.bench_function("oracle_spec_normal_8_nodes", |b| {
        b.iter(|| {
            let report = run_oracle(&config, &trace, OracleSkew::None).unwrap();
            black_box(report.finished_at)
        })
    });
    group.finish();
}

/// The five spec-trace replays measured by `engine_bench` / the
/// `bench-gate` CI job, as plain Criterion benches: full 32-node cluster 1,
/// V-Reconfiguration, CLI-default seeds.
fn engine_per_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_per_level");
    group.sample_size(10);
    for (no, level) in [
        (1, TraceLevel::Light),
        (2, TraceLevel::Moderate),
        (3, TraceLevel::Normal),
        (4, TraceLevel::ModeratelyIntensive),
        (5, TraceLevel::HighlyIntensive),
    ] {
        let trace = spec_trace_scaled(
            level,
            &mut SimRng::seed_from(TRACE_SEED),
            SPEC_LIFETIME_SCALE,
        );
        let config = SimConfig::new(ClusterParams::cluster1(), PolicyKind::VReconfiguration)
            .with_seed(SIM_SEED);
        let sim = Simulation::new(config);
        group.bench_function(format!("spec_level_{no}"), |b| {
            b.iter(|| {
                let report = sim.run(&trace);
                black_box(report.run_stats.events_processed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_vs_oracle, engine_per_level);
criterion_main!(benches);
