//! Declarative fault plans and their on-disk text format.

use serde::{Deserialize, Serialize};
use std::fmt;
use vr_simcore::time::{SimSpan, SimTime};

/// A scheduled crash of one workstation, with an optional restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Index of the workstation in the cluster (0-based).
    pub node: usize,
    /// Simulation time at which the node crashes.
    pub at: SimTime,
    /// If set, the node comes back up this long after the crash.
    pub restart_after: Option<SimSpan>,
}

/// A declarative description of every fault a run should experience.
///
/// The default plan is fault-free; builders switch individual fault classes
/// on. Probabilities are evaluated on a dedicated RNG stream forked from
/// the simulation seed, so two runs with the same seed and plan are
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled node crashes (and optional restarts).
    pub node_crashes: Vec<NodeCrash>,
    /// Probability in `[0, 1]` that any single migration attempt fails in
    /// transit.
    pub migration_failure_prob: f64,
    /// Retries the scheduler grants a failed migration before giving up
    /// and re-queueing the job locally.
    pub max_migration_retries: u32,
    /// Base backoff before a migration retry; doubles per attempt.
    pub retry_backoff: SimSpan,
    /// Probability in `[0, 1]` that a node's report is lost from one
    /// periodic load-information exchange.
    pub load_info_loss_prob: f64,
    /// Extra delay a reserved workstation stays reserved after the
    /// reservation protocol releases it (`SimSpan::ZERO` = no stall).
    pub reservation_release_stall: SimSpan,
    /// Salt mixed into the injector's RNG stream, so plans can be re-rolled
    /// without changing the simulation seed.
    pub seed_salt: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            node_crashes: Vec::new(),
            migration_failure_prob: 0.0,
            max_migration_retries: 3,
            retry_backoff: SimSpan::from_secs(1),
            load_info_loss_prob: 0.0,
            reservation_release_stall: SimSpan::ZERO,
            seed_salt: 0,
        }
    }
}

impl FaultPlan {
    /// A plan with no faults at all (identical to `Default`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Returns true if the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            // vr-lint::allow(float-eq, reason = "exact unset-sentinel check: probabilities default to literal 0.0")
            && self.migration_failure_prob == 0.0
            // vr-lint::allow(float-eq, reason = "exact unset-sentinel check: probabilities default to literal 0.0")
            && self.load_info_loss_prob == 0.0
            && self.reservation_release_stall == SimSpan::ZERO
    }

    /// Adds a node crash (optionally restarting after `restart_after`).
    pub fn with_crash(mut self, node: usize, at: SimTime, restart_after: Option<SimSpan>) -> Self {
        self.node_crashes.push(NodeCrash {
            node,
            at,
            restart_after,
        });
        self
    }

    /// Sets the migration failure probability.
    pub fn with_migration_failures(mut self, prob: f64) -> Self {
        self.migration_failure_prob = prob;
        self
    }

    /// Sets the load-information loss probability.
    pub fn with_load_info_loss(mut self, prob: f64) -> Self {
        self.load_info_loss_prob = prob;
        self
    }

    /// Sets the reservation-release stall delay.
    pub fn with_reservation_stall(mut self, delay: SimSpan) -> Self {
        self.reservation_release_stall = delay;
        self
    }

    /// Validates ranges (probabilities in `[0, 1]`, sane retry settings).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.migration_failure_prob) {
            return Err(format!(
                "migration_failure_prob must be in [0, 1], got {}",
                self.migration_failure_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.load_info_loss_prob) {
            return Err(format!(
                "load_info_loss_prob must be in [0, 1], got {}",
                self.load_info_loss_prob
            ));
        }
        if self.migration_failure_prob > 0.0 && self.retry_backoff == SimSpan::ZERO {
            return Err("retry_backoff must be positive when migrations can fail".into());
        }
        Ok(())
    }

    /// Parses the line-oriented plan format used by `--fault-plan <file>`.
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// crash node=3 at=120 restart_after=60
    /// crash node=5 at=300
    /// migration-failure p=0.2
    /// max-retries 5
    /// retry-backoff 2
    /// load-info-loss p=0.1
    /// reservation-stall 5
    /// seed-salt 99
    /// ```
    ///
    /// Durations and times are in seconds (fractions allowed).
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| PlanParseError {
                line: idx + 1,
                message: msg,
            };
            let mut parts = line.split_whitespace();
            // vr-lint::allow(panic-in-lib, reason = "split_whitespace on a line already checked non-blank always yields a first token")
            let keyword = parts.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = parts.collect();
            match keyword {
                "crash" => {
                    let mut node = None;
                    let mut at = None;
                    let mut restart_after = None;
                    for field in &rest {
                        let (key, value) = field
                            .split_once('=')
                            .ok_or_else(|| err(format!("expected key=value, got '{field}'")))?;
                        match key {
                            "node" => node = Some(parse_num::<usize>(value).map_err(&err)?),
                            "at" => at = Some(parse_secs(value).map(secs_to_time).map_err(&err)?),
                            "restart_after" => {
                                restart_after =
                                    Some(parse_secs(value).map(secs_to_span).map_err(&err)?)
                            }
                            other => return Err(err(format!("unknown crash field '{other}'"))),
                        }
                    }
                    plan.node_crashes.push(NodeCrash {
                        node: node.ok_or_else(|| err("crash requires node=<idx>".into()))?,
                        at: at.ok_or_else(|| err("crash requires at=<secs>".into()))?,
                        restart_after,
                    });
                }
                "migration-failure" => {
                    plan.migration_failure_prob = parse_p(&rest).map_err(&err)?;
                }
                "load-info-loss" => {
                    plan.load_info_loss_prob = parse_p(&rest).map_err(&err)?;
                }
                "max-retries" => {
                    plan.max_migration_retries =
                        parse_num::<u32>(single(&rest).map_err(&err)?).map_err(&err)?;
                }
                "retry-backoff" => {
                    plan.retry_backoff = parse_secs(single(&rest).map_err(&err)?)
                        .map(secs_to_span)
                        .map_err(&err)?;
                }
                "reservation-stall" => {
                    plan.reservation_release_stall = parse_secs(single(&rest).map_err(&err)?)
                        .map(secs_to_span)
                        .map_err(&err)?;
                }
                "seed-salt" => {
                    plan.seed_salt =
                        parse_num::<u64>(single(&rest).map_err(&err)?).map_err(&err)?;
                }
                other => return Err(err(format!("unknown directive '{other}'"))),
            }
        }
        plan.validate()
            .map_err(|message| PlanParseError { line: 0, message })?;
        Ok(plan)
    }
}

/// Error from [`FaultPlan::parse`], carrying the offending line number
/// (0 for whole-plan validation failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number, or 0 for plan-level validation errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid fault plan: {}", self.message)
        } else {
            write!(f, "fault plan line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PlanParseError {}

fn single<'a>(rest: &[&'a str]) -> Result<&'a str, String> {
    match rest {
        [one] => Ok(one),
        _ => Err(format!("expected exactly one argument, got {}", rest.len())),
    }
}

fn parse_p(rest: &[&str]) -> Result<f64, String> {
    let field = single(rest)?;
    let value = field
        .strip_prefix("p=")
        .ok_or_else(|| format!("expected p=<prob>, got '{field}'"))?;
    parse_num::<f64>(value)
}

fn parse_num<T: std::str::FromStr>(value: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    value
        .parse::<T>()
        .map_err(|e| format!("bad number '{value}': {e}"))
}

fn parse_secs(value: &str) -> Result<f64, String> {
    let trimmed = value.strip_suffix('s').unwrap_or(value);
    let secs = parse_num::<f64>(trimmed)?;
    if secs < 0.0 || !secs.is_finite() {
        return Err(format!(
            "duration must be finite and non-negative, got {secs}"
        ));
    }
    Ok(secs)
}

fn secs_to_time(secs: f64) -> SimTime {
    SimTime::from_micros((secs * 1e6).round() as u64)
}

fn secs_to_span(secs: f64) -> SimSpan {
    SimSpan::from_micros((secs * 1e6).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate().unwrap();
    }

    #[test]
    fn parses_full_plan() {
        let text = "\
# adversarial mix
crash node=3 at=120 restart_after=60
crash node=5 at=300.5

migration-failure p=0.2
max-retries 5
retry-backoff 2s
load-info-loss p=0.1
reservation-stall 5
seed-salt 99
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(
            plan.node_crashes,
            vec![
                NodeCrash {
                    node: 3,
                    at: SimTime::from_secs(120),
                    restart_after: Some(SimSpan::from_secs(60)),
                },
                NodeCrash {
                    node: 5,
                    at: SimTime::from_micros(300_500_000),
                    restart_after: None,
                },
            ]
        );
        assert_eq!(plan.migration_failure_prob, 0.2);
        assert_eq!(plan.max_migration_retries, 5);
        assert_eq!(plan.retry_backoff, SimSpan::from_secs(2));
        assert_eq!(plan.load_info_loss_prob, 0.1);
        assert_eq!(plan.reservation_release_stall, SimSpan::from_secs(5));
        assert_eq!(plan.seed_salt, 99);
        assert!(!plan.is_empty());
    }

    #[test]
    fn parse_round_trips_builders() {
        let built = FaultPlan::none()
            .with_crash(1, SimTime::from_secs(10), None)
            .with_migration_failures(0.5);
        let parsed = FaultPlan::parse("crash node=1 at=10\nmigration-failure p=0.5").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn rejects_bad_input() {
        for bad in [
            "crash node=1",                // missing at=
            "crash at=10",                 // missing node=
            "crash node=x at=10",          // bad number
            "migration-failure 0.5",       // missing p=
            "migration-failure p=1.5",     // out of range
            "teleport node=1",             // unknown directive
            "reservation-stall",           // missing argument
            "crash node=1 at=10 when=now", // unknown field
        ] {
            let result = FaultPlan::parse(bad);
            assert!(result.is_err(), "accepted: {bad}");
        }
        let err = FaultPlan::parse("crash node=1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let plan = FaultPlan::parse("\n# nothing\n   \n").unwrap();
        assert!(plan.is_empty());
    }
}
