//! Memory capacity and the page-fault model.
//!
//! The original system used an "experiment-based" page-fault model fed by
//! kernel traces (ICDCS 2001, ref \[3] of the paper). We substitute an
//! explicit analytic model (see `DESIGN.md` §2): when the resident working
//! sets oversubscribe user memory, each job runs with a *stall factor* —
//! page-fault stall seconds per second of CPU progress — proportional to the
//! relative overflow and to the job's share of memory demand.
//!
//! The model reproduces the two behaviours the paper's argument rests on:
//!
//! 1. jobs with large memory demands fault more and are therefore *less
//!    competitive* than small jobs under global page replacement, and
//! 2. paging overhead rises smoothly (linearly or quadratically, selectable)
//!    with oversubscription, so one oversized job degrades everyone on the
//!    node.

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimSpan;

use crate::units::Bytes;

/// Memory capacities of a workstation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// User memory space available to jobs.
    pub user: Bytes,
    /// Swap space; jobs may oversubscribe up to `user + swap` in total.
    pub swap: Bytes,
    /// Page size (4 KB in the paper).
    pub page_size: Bytes,
    /// Service time of one page fault (10 ms in the paper).
    pub fault_service: SimSpan,
    /// Sequential swap bandwidth in bytes per second, used to cost whole-
    /// image swap-out/swap-in (the suspension strawman of §1). Era-typical
    /// disks sustain ~10 MB/s sequentially.
    pub swap_bandwidth: Bytes,
}

impl MemoryParams {
    /// The paper's common memory constants with the given capacities.
    pub fn with_capacity(user: Bytes, swap: Bytes) -> Self {
        MemoryParams {
            user,
            swap,
            page_size: Bytes::from_kb(4),
            fault_service: SimSpan::from_millis(10),
            swap_bandwidth: Bytes::from_mb(10),
        }
    }

    /// Time to swap a whole `image` out to (or in from) disk sequentially.
    ///
    /// # Panics
    ///
    /// Panics if the swap bandwidth is zero.
    pub fn swap_transfer_time(&self, image: Bytes) -> SimSpan {
        assert!(
            !self.swap_bandwidth.is_zero(),
            "swap bandwidth must be positive"
        );
        SimSpan::from_secs_f64(image.as_u64() as f64 / self.swap_bandwidth.as_u64() as f64)
    }

    /// Hard ceiling on total resident demand: user memory plus swap.
    pub fn capacity_limit(&self) -> Bytes {
        self.user + self.swap
    }
}

/// Selects how page-fault stalls scale with memory oversubscription.
///
/// All variants produce a per-job **stall factor** `s_j`: seconds of
/// page-fault stall per second of CPU progress. Given resident working sets
/// `w_1..w_k` with total `W` over user memory `U` (overflow `O = W − U`):
///
/// * [`LinearOverflow`](FaultModel::LinearOverflow):
///   `s_j = κ · (O/U) · (w_j / w̄)` where `w̄ = W/k`. Average stall across
///   the node is `κ · O/U`; with the default `κ = 4` a node oversubscribed
///   by 25 % doubles its jobs' latency on average.
/// * [`QuadraticOverflow`](FaultModel::QuadraticOverflow):
///   `s_j = κ · (O/U)² · (w_j / w̄)` — gentler near the knee, harsher deep
///   in thrash. Used for sensitivity ablations.
/// * [`Off`](FaultModel::Off): no faults ever (idealized infinite memory).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Stall grows linearly with relative overflow.
    LinearOverflow {
        /// Aggressiveness: average node stall factor at 100 % overflow.
        kappa: f64,
    },
    /// Stall grows with the square of relative overflow.
    QuadraticOverflow {
        /// Aggressiveness: average node stall factor at 100 % overflow.
        kappa: f64,
    },
    /// Paging disabled (idealized memory).
    Off,
}

impl Default for FaultModel {
    /// The calibration described in `DESIGN.md`: linear with κ = 4.
    fn default() -> Self {
        FaultModel::LinearOverflow { kappa: 4.0 }
    }
}

impl FaultModel {
    /// Computes each resident job's stall factor (stall seconds per CPU
    /// second) given its working set and the node's user memory.
    ///
    /// Returns an empty vector for an empty node. Working sets of zero are
    /// tolerated (stall 0 for those jobs).
    pub fn stall_factors(&self, working_sets: &[Bytes], user: Bytes) -> Vec<f64> {
        let mut out = Vec::new();
        self.stall_factors_into(working_sets, user, &mut out);
        out
    }

    /// [`FaultModel::stall_factors`] into a caller-owned buffer (cleared
    /// first), so the simulation hot path can reuse its allocation. The
    /// arithmetic is identical term for term: it is defined over
    /// [`FaultModel::stall_curve`], which fused callers share.
    pub fn stall_factors_into(&self, working_sets: &[Bytes], user: Bytes, out: &mut Vec<f64>) {
        out.clear();
        let k = working_sets.len();
        if k == 0 {
            return;
        }
        let total: Bytes = working_sets.iter().copied().sum();
        let curve = self.stall_curve(total, k, user);
        out.extend(working_sets.iter().map(|w| curve.stall(*w)));
    }

    /// The node-wide stall curve for one integration segment: the scalars of
    /// the per-job formula `s_j = κ_eff · (w_j / w̄)` precomputed from the
    /// total demand `total` of `k` resident working sets. Callers that
    /// already know each job's working set evaluate [`StallCurve::stall`]
    /// per job in a single fused pass; [`FaultModel::stall_factors_into`] is
    /// itself defined over this curve, so the two paths cannot drift.
    pub fn stall_curve(&self, total: Bytes, k: usize, user: Bytes) -> StallCurve {
        const FLAT: StallCurve = StallCurve {
            kappa_eff: 0.0,
            mean_ws: 1.0,
            flat_zero: true,
        };
        let overflow = total.saturating_sub(user);
        if overflow.is_zero() || total.is_zero() {
            return FLAT;
        }
        let kappa_eff = match self {
            FaultModel::Off => return FLAT,
            FaultModel::LinearOverflow { kappa } => {
                kappa * (overflow.as_u64() as f64 / user.as_u64() as f64)
            }
            FaultModel::QuadraticOverflow { kappa } => {
                let rho = overflow.as_u64() as f64 / user.as_u64() as f64;
                kappa * rho * rho
            }
        };
        StallCurve {
            kappa_eff,
            mean_ws: total.as_u64() as f64 / k as f64,
            flat_zero: false,
        }
    }

    /// Estimated page faults per second of CPU progress for a job with the
    /// given stall factor.
    pub fn faults_per_cpu_second(&self, stall_factor: f64, params: &MemoryParams) -> f64 {
        let service = params.fault_service.as_secs_f64();
        if service <= 0.0 {
            0.0
        } else {
            stall_factor / service
        }
    }
}

/// Per-segment stall scalars built by [`FaultModel::stall_curve`]. Within
/// one integration segment the job population and total demand are constant,
/// so the per-job stall factor reduces to a job-independent scale applied to
/// each working set.
#[derive(Debug, Clone, Copy)]
pub struct StallCurve {
    kappa_eff: f64,
    mean_ws: f64,
    /// `true` when the node is not oversubscribed (or faulting is disabled):
    /// every job stalls exactly 0.0 regardless of its working set.
    flat_zero: bool,
}

impl StallCurve {
    /// Stall factor (stall seconds per CPU second) for one job with working
    /// set `w` under this curve.
    #[inline]
    pub fn stall(&self, w: Bytes) -> f64 {
        if self.flat_zero {
            0.0
        } else {
            self.kappa_eff * (w.as_u64() as f64 / self.mean_ws)
        }
    }
}

/// Snapshot of one node's memory occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryUsage {
    /// Sum of resident working sets.
    pub demand: Bytes,
    /// User memory space.
    pub user: Bytes,
}

impl MemoryUsage {
    /// Idle memory: user space not claimed by any working set.
    pub fn idle(&self) -> Bytes {
        self.user.saturating_sub(self.demand)
    }

    /// Overflow: demand beyond user space (being paged).
    pub fn overflow(&self) -> Bytes {
        self.demand.saturating_sub(self.user)
    }

    /// `true` if demand exceeds user space (the node is faulting).
    pub fn is_oversubscribed(&self) -> bool {
        self.demand > self.user
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> Bytes {
        Bytes::from_mb(n)
    }

    #[test]
    fn no_overflow_means_no_stall() {
        let model = FaultModel::default();
        let factors = model.stall_factors(&[mb(50), mb(60)], mb(128));
        assert_eq!(factors, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_node_yields_empty_factors() {
        assert!(FaultModel::default().stall_factors(&[], mb(128)).is_empty());
    }

    #[test]
    fn linear_calibration_point() {
        // 25% oversubscription with equal jobs: each job's stall factor is
        // kappa * 0.25 = 1.0, i.e. latency doubles.
        let model = FaultModel::LinearOverflow { kappa: 4.0 };
        let factors = model.stall_factors(&[mb(80), mb(80)], mb(128));
        for f in factors {
            assert!((f - 1.0).abs() < 1e-9, "factor {f}");
        }
    }

    #[test]
    fn big_jobs_stall_proportionally_more() {
        let model = FaultModel::LinearOverflow { kappa: 4.0 };
        let factors = model.stall_factors(&[mb(30), mb(90)], mb(100));
        // 120MB demand on 100MB: overflow ratio 0.2, kappa_eff 0.8.
        // mean ws 60MB: small job 0.8*0.5=0.4, big job 0.8*1.5=1.2.
        assert!((factors[0] - 0.4).abs() < 1e-9);
        assert!((factors[1] - 1.2).abs() < 1e-9);
        assert!((factors[1] / factors[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_is_gentler_below_full_overflow() {
        let lin = FaultModel::LinearOverflow { kappa: 4.0 };
        let quad = FaultModel::QuadraticOverflow { kappa: 4.0 };
        let ws = [mb(80), mb(80)];
        let fl = lin.stall_factors(&ws, mb(128))[0];
        let fq = quad.stall_factors(&ws, mb(128))[0];
        assert!(fq < fl, "quadratic {fq} should be below linear {fl}");
        assert!((fq - 0.25 * fl).abs() < 1e-9); // rho = 0.25
    }

    #[test]
    fn off_model_never_stalls() {
        let factors = FaultModel::Off.stall_factors(&[mb(500)], mb(10));
        assert_eq!(factors, vec![0.0]);
    }

    #[test]
    fn faults_per_second_inverts_service_time() {
        let params = MemoryParams::with_capacity(mb(128), mb(128));
        let model = FaultModel::default();
        // Stall factor 1.0 at 10ms per fault = 100 faults per cpu-second.
        assert!((model.faults_per_cpu_second(1.0, &params) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_usage_gauges() {
        let u = MemoryUsage {
            demand: mb(150),
            user: mb(128),
        };
        assert_eq!(u.idle(), Bytes::ZERO);
        assert_eq!(u.overflow(), mb(22));
        assert!(u.is_oversubscribed());
        let u2 = MemoryUsage {
            demand: mb(100),
            user: mb(128),
        };
        assert_eq!(u2.idle(), mb(28));
        assert_eq!(u2.overflow(), Bytes::ZERO);
        assert!(!u2.is_oversubscribed());
    }

    #[test]
    fn with_capacity_uses_paper_constants() {
        let p = MemoryParams::with_capacity(mb(384), mb(380));
        assert_eq!(p.page_size.as_u64(), 4096);
        assert_eq!(p.fault_service, SimSpan::from_millis(10));
        assert_eq!(p.capacity_limit(), mb(764));
    }

    #[test]
    fn swap_transfer_time_scales_with_image() {
        let p = MemoryParams::with_capacity(mb(384), mb(380));
        // 10 MB/s: a 100 MB image takes 10 s.
        assert_eq!(p.swap_transfer_time(mb(100)), SimSpan::from_secs(10));
        assert_eq!(p.swap_transfer_time(Bytes::ZERO), SimSpan::ZERO);
    }
}
