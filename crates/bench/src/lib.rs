//! # vr-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§3–§4).
//! Each `src/bin/*` binary prints one artifact; the `experiments` binary
//! runs everything and emits the markdown that backs `EXPERIMENTS.md`.
//!
//! | Binary        | Paper artifact |
//! |---------------|----------------|
//! | `table1`      | Table 1 — SPEC 2000 program characteristics |
//! | `table2`      | Table 2 — application program characteristics |
//! | `fig1`        | Figure 1 — group 1 total execution & queuing times |
//! | `fig2`        | Figure 2 — group 1 slowdowns & idle memory volumes |
//! | `fig3`        | Figure 3 — group 2 total execution & queuing times |
//! | `fig4`        | Figure 4 — group 2 slowdowns & job balance skews |
//! | `model_check` | §5 — analytical model verified against measurements |
//! | `ablation`    | §2.2/§2.3 — negative conditions & design ablations |
//! | `experiments` | everything above, as markdown |
//!
//! The Criterion benches under `benches/` quantify the overhead claims
//! ("the adaptive process causes little additional overhead").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod paper;
pub mod render;

use vr_cluster::params::ClusterParams;
use vr_metrics::comparison::MetricComparison;
use vr_simcore::rng::SimRng;
use vr_workload::trace::{app_trace, spec_trace, Trace, TraceLevel};
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::report::RunReport;
use vrecon::sim::Simulation;

/// Seed used to regenerate the workload traces (fixed so every binary sees
/// the same ten traces).
pub const TRACE_SEED: u64 = 42;

/// Seed used for scheduling randomness inside the simulator.
pub const SIM_SEED: u64 = 7;

/// The two workload groups of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Workload group 1: SPEC 2000 on cluster 1 (384 MB nodes).
    Spec,
    /// Workload group 2: scientific applications on cluster 2 (128 MB
    /// nodes).
    App,
}

impl Group {
    /// The cluster this group runs on.
    pub fn cluster(self) -> ClusterParams {
        match self {
            Group::Spec => ClusterParams::cluster1(),
            Group::App => ClusterParams::cluster2(),
        }
    }

    /// Regenerates this group's trace at `level`.
    pub fn trace(self, level: TraceLevel) -> Trace {
        let mut rng = SimRng::seed_from(TRACE_SEED);
        match self {
            Group::Spec => spec_trace(level, &mut rng),
            Group::App => app_trace(level, &mut rng),
        }
    }
}

/// A G-Loadsharing / V-Reconfiguration pair of runs over one trace.
#[derive(Debug)]
pub struct PolicyPair {
    /// The trace both policies executed.
    pub trace_name: String,
    /// Baseline run.
    pub gls: RunReport,
    /// Virtual-reconfiguration run.
    pub vr: RunReport,
}

impl PolicyPair {
    /// Comparison of total execution times.
    pub fn execution_time(&self) -> MetricComparison {
        MetricComparison::new(
            self.gls.total_execution_secs(),
            self.vr.total_execution_secs(),
        )
    }

    /// Comparison of total queuing times.
    pub fn queue_time(&self) -> MetricComparison {
        MetricComparison::new(self.gls.total_queue_secs(), self.vr.total_queue_secs())
    }

    /// Comparison of average slowdowns.
    pub fn slowdown(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_slowdown(), self.vr.avg_slowdown())
    }

    /// Comparison of average idle memory volumes (MB, virtual cluster).
    pub fn idle_memory(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_idle_memory_mb(), self.vr.avg_idle_memory_mb())
    }

    /// Comparison of average job balance skews.
    pub fn balance_skew(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_balance_skew(), self.vr.avg_balance_skew())
    }
}

/// Runs one trace under a single policy with the harness defaults.
pub fn run_policy(group: Group, trace: &Trace, policy: PolicyKind) -> RunReport {
    let config = SimConfig::new(group.cluster(), policy).with_seed(SIM_SEED);
    Simulation::new(config).run(trace)
}

/// Runs one trace under both policies (in parallel threads — the runs are
/// independent).
pub fn run_pair(group: Group, level: TraceLevel) -> PolicyPair {
    let trace = group.trace(level);
    let (gls, vr) = std::thread::scope(|scope| {
        let gls = scope.spawn(|| run_policy(group, &trace, PolicyKind::GLoadSharing));
        let vr = scope.spawn(|| run_policy(group, &trace, PolicyKind::VReconfiguration));
        (
            gls.join().expect("baseline run panicked"),
            vr.join().expect("reconfiguration run panicked"),
        )
    });
    PolicyPair {
        trace_name: trace.name,
        gls,
        vr,
    }
}

/// Runs all five arrival levels of a group, each level's two policies in
/// parallel.
pub fn run_group(group: Group) -> Vec<PolicyPair> {
    TraceLevel::ALL
        .into_iter()
        .map(|level| run_pair(group, level))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_stable_across_calls() {
        let a = Group::Spec.trace(TraceLevel::Light);
        let b = Group::Spec.trace(TraceLevel::Light);
        assert_eq!(a, b);
        assert_eq!(a.len(), 359);
    }

    #[test]
    fn groups_map_to_their_clusters() {
        assert_eq!(
            Group::Spec.cluster().nodes[0].memory.user,
            vr_cluster::units::Bytes::from_mb(384)
        );
        assert_eq!(
            Group::App.cluster().nodes[0].memory.user,
            vr_cluster::units::Bytes::from_mb(128)
        );
    }
}
