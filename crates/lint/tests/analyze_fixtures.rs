//! Golden-diagnostic tests for the semantic analyzer: every rule fires on
//! its seeded fixture at the exact `file:line:col`, the two regression
//! fixtures pin the shapes of real bugs the analyzer caught in this tree,
//! and the `vr-analyze` binary exits 0/1/2 for clean/findings/error.

use std::path::PathBuf;
use std::process::Command;

use vr_lint::analyze_sources;

/// Runs the analyzer over `(rel_path, source)` pairs and returns every
/// diagnostic as `(file, line, col, rule)` in report order.
fn findings(files: &[(&str, &str)]) -> Vec<(String, u32, u32, String)> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(r, s)| ((*r).to_owned(), (*s).to_owned()))
        .collect();
    analyze_sources(&owned)
        .diagnostics
        .into_iter()
        .map(|d| (d.file, d.line, d.col, d.rule))
        .collect()
}

fn one_file(rel: &str, src: &str) -> Vec<(String, u32, u32, String)> {
    findings(&[(rel, src)])
}

#[test]
fn wall_clock_taint_fires_with_exact_positions() {
    let got = one_file(
        "crates/serve/src/timing.rs",
        include_str!("fixtures/analyze/wall_clock_taint.rs"),
    );
    let rule = "wall-clock-taint".to_owned();
    assert_eq!(
        got,
        vec![
            ("crates/serve/src/timing.rs".to_owned(), 1, 1, rule.clone()),
            ("crates/serve/src/timing.rs".to_owned(), 6, 5, rule),
        ]
    );
}

#[test]
fn boundary_absorbs_taint_but_reports_leaked_instants() {
    // Alone, the boundary file reports only its own signature leak.
    let got = one_file(
        "crates/serve/src/clockfix.rs",
        include_str!("fixtures/analyze/wall_clock_boundary.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/serve/src/clockfix.rs".to_owned(),
            10,
            9,
            "wall-clock-leak".to_owned()
        )]
    );
    // A clean caller routed through the boundary stays clean.
    let got = findings(&[
        (
            "crates/serve/src/clockfix.rs",
            include_str!("fixtures/analyze/wall_clock_boundary.rs"),
        ),
        (
            "crates/serve/src/caller.rs",
            "pub fn timed() -> u64 { Stopwatch::start() }\n",
        ),
    ]);
    assert_eq!(got.len(), 1, "only the boundary's own leak: {got:?}");
}

#[test]
fn rng_discipline_fires_with_exact_positions() {
    let got = one_file(
        "crates/core/src/streams.rs",
        include_str!("fixtures/analyze/rng_discipline.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/core/src/streams.rs".to_owned(),
            2,
            5,
            "rng-stream-discipline".to_owned()
        )]
    );
}

#[test]
fn panic_path_fires_on_the_undocumented_caller_only() {
    let got = one_file(
        "crates/core/src/math.rs",
        include_str!("fixtures/analyze/panic_path.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/core/src/math.rs".to_owned(),
            11,
            5,
            "panic-path".to_owned()
        )]
    );
}

#[test]
fn blocking_while_locked_fires_with_exact_positions() {
    let got = one_file(
        "crates/serve/src/fixture_pool.rs",
        include_str!("fixtures/analyze/blocking_while_locked.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/serve/src/fixture_pool.rs".to_owned(),
            3,
            22,
            "blocking-while-locked".to_owned()
        )]
    );
}

#[test]
fn lock_cycle_fires_on_both_edges() {
    let got = one_file(
        "crates/serve/src/fixture_order.rs",
        include_str!("fixtures/analyze/lock_cycle.rs"),
    );
    let rule = "lock-cycle".to_owned();
    assert_eq!(
        got,
        vec![
            (
                "crates/serve/src/fixture_order.rs".to_owned(),
                3,
                18,
                rule.clone()
            ),
            ("crates/serve/src/fixture_order.rs".to_owned(), 10, 19, rule),
        ]
    );
}

#[test]
fn guard_across_callback_fires_with_exact_positions() {
    let got = one_file(
        "crates/serve/src/fixture_hook.rs",
        include_str!("fixtures/analyze/guard_across_callback.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/serve/src/fixture_hook.rs".to_owned(),
            3,
            11,
            "guard-across-callback".to_owned()
        )]
    );
}

#[test]
fn regression_naked_notify_shutdown_shape() {
    // The broken shutdown fires; the scoped-guard fix (the shape now in
    // crates/serve/src/server.rs) is clean.
    let got = one_file(
        "crates/serve/src/fixture_shutdown.rs",
        include_str!("fixtures/analyze/regression_naked_notify.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/serve/src/fixture_shutdown.rs".to_owned(),
            12,
            14,
            "naked-notify".to_owned()
        )]
    );
}

#[test]
fn regression_stderr_lock_into_blocking_call_shape() {
    // The broken sweep (a fresh stderr guard inside the blocking call's
    // argument list) fires; passing the unlocked handle (the shape now in
    // crates/runner/src/runner.rs) is clean.
    let got = one_file(
        "crates/runner/src/fixture_progress.rs",
        include_str!("fixtures/analyze/regression_stderr_lock.rs"),
    );
    assert_eq!(
        got,
        vec![(
            "crates/runner/src/fixture_progress.rs".to_owned(),
            14,
            38,
            "blocking-while-locked".to_owned()
        )]
    );
}

#[test]
fn stale_and_malformed_directives_fire_with_exact_positions() {
    let got = one_file(
        "crates/serve/src/fixture_directives.rs",
        include_str!("fixtures/analyze/directives.rs"),
    );
    let file = "crates/serve/src/fixture_directives.rs".to_owned();
    assert_eq!(
        got,
        vec![
            (file.clone(), 1, 1, "stale-allow".to_owned()),
            (file.clone(), 4, 1, "stale-directive".to_owned()),
            (file, 7, 1, "malformed-directive".to_owned()),
        ]
    );
}

// ---------------------------------------------------------------------------
// Binary exit codes
// ---------------------------------------------------------------------------

/// Builds a throwaway mini-workspace containing one source file.
fn scratch_workspace(tag: &str, source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("vr-analyze-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src_dir = root.join("crates/serve/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(src_dir.join("lib.rs"), source).unwrap();
    root
}

#[test]
fn binary_exits_zero_on_clean_one_on_findings_two_on_error() {
    let bin = env!("CARGO_BIN_EXE_vr-analyze");

    let clean = scratch_workspace("clean", "pub fn fine() -> u64 { 7 }\n");
    let status = Command::new(bin)
        .args(["--root", clean.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(status.status.code(), Some(0), "{status:?}");

    let dirty = scratch_workspace(
        "dirty",
        "pub fn bad(q: &Mutex<u64>, ch: &Receiver<u64>) {\n    \
         let g = q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n    \
         let _ = ch.recv();\n    drop(g);\n}\n",
    );
    let sarif_path = dirty.join("analyze.sarif");
    let out = Command::new(bin)
        .args([
            "--root",
            dirty.to_str().unwrap(),
            "--format",
            "json",
            "--sarif-out",
            sarif_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocking-while-locked"), "{stdout}");
    let sarif = std::fs::read_to_string(&sarif_path).unwrap();
    assert!(sarif.contains("\"2.1.0\""), "{sarif}");

    let missing = Command::new(bin)
        .args(["--root", "/nonexistent/vr-analyze-root"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");

    let bad_flag = Command::new(bin)
        .args(["--format", "yaml"])
        .output()
        .unwrap();
    assert_eq!(bad_flag.status.code(), Some(2), "{bad_flag:?}");

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&dirty);
}
