//! Benchmarks of the workstation model's lazy piecewise advancement — the
//! inner loop of every simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vr_cluster::cpu::CpuParams;
use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
use vr_cluster::memory::{FaultModel, MemoryParams};
use vr_cluster::node::{NodeId, NodeParams, Workstation};
use vr_cluster::units::Bytes;
use vr_simcore::time::{SimSpan, SimTime};

fn params() -> NodeParams {
    NodeParams {
        cpu: CpuParams::with_slots(16),
        memory: MemoryParams::with_capacity(Bytes::from_mb(384), Bytes::from_mb(380)),
        fault_model: FaultModel::default(),
        protection: Default::default(),
    }
}

fn job(id: u64, ws_mb: u64, phases: bool) -> RunningJob {
    let memory = if phases {
        MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(10), Bytes::from_mb(ws_mb / 4)),
            (SimSpan::from_secs(100), Bytes::from_mb(ws_mb)),
            (SimSpan::MAX, Bytes::from_mb(ws_mb / 2)),
        ])
        .expect("static phases")
    } else {
        MemoryProfile::constant(Bytes::from_mb(ws_mb))
    };
    RunningJob::new(JobSpec {
        id: JobId(id),
        name: format!("bench-{id}"),
        class: JobClass::CpuMemoryIntensive,
        submit: SimTime::ZERO,
        cpu_work: SimSpan::from_secs(200),
        memory,
        io_rate: 0.0,
        malleable: None,
    })
}

fn loaded_node(jobs: usize, ws_mb: u64, phases: bool) -> Workstation {
    let mut node = Workstation::new(NodeId(0), params());
    for i in 0..jobs {
        node.try_admit(job(i as u64, ws_mb, phases), SimTime::ZERO)
            .expect("bench admission");
    }
    node
}

fn node_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_advance");
    for &jobs in &[1usize, 4, 8] {
        group.bench_function(format!("advance_1000s_{jobs}_flat_jobs"), |b| {
            b.iter_batched(
                || loaded_node(jobs, 60, false),
                |mut node| {
                    node.advance_to(SimTime::from_secs(1000));
                    black_box(node.take_completed().len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("advance_1000s_8_phased_faulting_jobs", |b| {
        b.iter_batched(
            || loaded_node(8, 120, true), // oversubscribed: fault model active
            |mut node| {
                node.advance_to(SimTime::from_secs(1000));
                black_box(node.take_completed().len())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, node_advance);
criterion_main!(benches);
