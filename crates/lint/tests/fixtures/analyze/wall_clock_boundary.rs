// vr-analyze::boundary(wall-clock, reason = "fixture: the declared clock seam")
pub struct Stopwatch;

impl Stopwatch {
    pub fn start() -> u64 {
        Instant::now();
        0
    }

    pub fn leak_raw() -> Instant {
        Instant::now()
    }
}
