//! Regenerates **Figure 1**: total execution times (left) and queuing times
//! (right) of the 5 workload-group-1 traces on a 32-workstation cluster,
//! scheduled by G-Loadsharing vs V-Reconfiguration.

use vr_bench::render::figure_panel;
use vr_bench::{paper, run_group, Group};

fn main() {
    println!("Figure 1 — workload group 1 (SPEC 2000) on cluster 1 (32 nodes)\n");
    let pairs = run_group(Group::Spec);
    println!(
        "{}",
        figure_panel(
            "left: total execution times (s)",
            &pairs,
            &paper::FIG1_EXEC,
            0,
            |p| p.execution_time(),
        )
    );
    println!(
        "{}",
        figure_panel(
            "right: total queuing times (s)",
            &pairs,
            &paper::FIG1_QUEUE,
            0,
            |p| p.queue_time(),
        )
    );
}
