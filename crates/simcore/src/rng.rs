//! Deterministic random numbers and distribution samplers.
//!
//! Every source of randomness in a simulation flows through one seeded
//! [`SimRng`], so an identical configuration and seed reproduce an identical
//! run. Independent deterministic streams can be split off with
//! [`SimRng::fork`] (e.g. one stream per workload trace) so that adding draws
//! to one component does not perturb another.
//!
//! The generator is self-contained (xoshiro256++ seeded through splitmix64,
//! no external crates — the build environment has no registry access), and
//! the normal, lognormal, and exponential samplers needed by the workload
//! generator are implemented here (Box–Muller and inverse-CDF transforms).
//!
//! ```
//! use vr_simcore::rng::SimRng;
//!
//! let mut a = SimRng::seed_from(42);
//! let mut b = SimRng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//!
//! let x = a.lognormal(3.0, 1.0);
//! assert!(x > 0.0);
//! ```

/// xoshiro256++ core: fast, tiny-state, and entirely deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state via splitmix64, per the
    /// reference implementation's seeding recommendation.
    fn seeded(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = splitmix64(x);
            *slot = x;
        }
        // The all-zero state is the one fixed point; unreachable from
        // splitmix64 outputs in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256PlusPlus { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded random-number generator with the distribution samplers the
/// simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    /// Spare deviate from the last Box–Muller pair.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seeded(seed),
            spare_normal: None,
        }
    }

    /// Splits off an independent deterministic stream.
    ///
    /// The child stream is a pure function of this generator's seed history
    /// and `stream`; forking with different `stream` values yields unrelated
    /// sequences without consuming draws from `self`'s future.
    // vr-analyze::rng-authority(reason = "this file defines SimRng; fork() is the sanctioned stream splitter everyone else is told to use")
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent's current state fingerprint with the stream id via
        // splitmix64 so child streams are decorrelated.
        let mut cloned = self.inner.clone();
        let fingerprint = cloned.next_u64();
        SimRng::seed_from(splitmix64(fingerprint ^ splitmix64(stream)))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`: the top 53 bits of a draw, scaled.
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi, got [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        // 128-bit multiply-shift maps the draw to [0, n) without the low-bit
        // bias of a plain modulus.
        ((u128::from(self.inner.next_u64()) * n as u128) >> 64) as usize
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Picks an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index requires weights");
        let total: f64 = weights
            .iter()
            .inspect(|w| assert!(**w >= 0.0, "negative weight {w}"))
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Standard normal deviate via Box–Muller (with spare caching).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0,
            "normal requires std_dev >= 0, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal deviate: `exp(N(mu, sigma))`.
    ///
    /// `mu` and `sigma` are the mean and standard deviation of the
    /// *underlying normal*, matching the parameterization of the paper's
    /// arrival-rate function.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential deviate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential requires rate > 0, got {rate}");
        let u = 1.0 - self.uniform(); // (0, 1]
        -u.ln() / rate
    }

    /// Multiplies `value` by a uniform jitter factor in
    /// `[1 - spread, 1 + spread]`.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not in `[0, 1)`.
    pub fn jitter(&mut self, value: f64, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0, 1), got {spread}"
        );
        // vr-lint::allow(float-eq, reason = "exact zero fast-path: spread 0.0 disables jitter by contract")
        if spread == 0.0 {
            return value;
        }
        value * self.uniform_range(1.0 - spread, 1.0 + spread)
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// splitmix64 finalizer, used to decorrelate fork streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(0);
        let mut c3 = parent.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = SimRng::seed_from(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_with_correct_median() {
        let mut rng = SimRng::seed_from(13);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal(2.0, 0.5)).collect();
        assert!(samples.iter().all(|x| *x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // Median of lognormal(mu, sigma) is exp(mu).
        assert!(
            (median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn exponential_matches_mean() {
        let mut rng = SimRng::seed_from(17);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(19);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn jitter_bounds_hold() {
        let mut rng = SimRng::seed_from(23);
        for _ in 0..1000 {
            let v = rng.jitter(100.0, 0.2);
            assert!((80.0..=120.0).contains(&v), "{v}");
        }
        assert_eq!(rng.jitter(100.0, 0.0), 100.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_range_validates() {
        SimRng::seed_from(0).uniform_range(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate > 0")]
    fn exponential_validates() {
        SimRng::seed_from(0).exponential(0.0);
    }
}
