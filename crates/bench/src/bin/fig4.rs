//! Regenerates **Figure 4**: average slowdowns (left) and average job
//! balance skews (right) for the 5 workload-group-2 traces, plus the
//! sampling-interval insensitivity check for the skew gauge (§4.2).

use vr_bench::render::figure_panel;
use vr_bench::{paper, run_group, Group};
use vr_metrics::table::{fmt_f, TextTable};
use vr_simcore::time::SimSpan;

fn main() {
    println!("Figure 4 — workload group 2 (applications) on cluster 2 (32 nodes)\n");
    let pairs = run_group(Group::App);
    println!(
        "{}",
        figure_panel(
            "left: average slowdowns",
            &pairs,
            &paper::FIG4_SLOWDOWN,
            2,
            |p| p.slowdown(),
        )
    );
    println!(
        "{}",
        figure_panel(
            "right: average job balance skews (non-reserved workstations)",
            &pairs,
            &paper::FIG4_SKEW,
            3,
            |p| p.balance_skew(),
        )
    );

    // §4.2 interval-insensitivity check on the V-R runs.
    let mut table = TextTable::new(vec!["trace", "1s", "10s", "30s", "60s"]);
    for pair in &pairs {
        let series = &pair.vr.gauges.balance_skew;
        let cells: Vec<String> = [1u64, 10, 30, 60]
            .iter()
            .map(|s| fmt_f(series.resample(SimSpan::from_secs(*s)).sample_average(), 3))
            .collect();
        let mut row = vec![pair.trace_name.clone()];
        row.extend(cells);
        table.row(row);
    }
    println!(
        "sampling-interval insensitivity of the average job balance skew (V-R):\n{}",
        table.render()
    );
}
