//! Job-arrival processes.
//!
//! §3.3.2 of the paper generates submission times from a lognormal rate
//! function
//!
//! ```text
//! R_ln(t) = 1 / (sqrt(2π)·σ·t) · exp(−(ln t − μ)² / (2σ²)),   t > 0
//! ```
//!
//! (the printed formula's `2μ²` denominator is the well-known typo for the
//! standard lognormal `2σ²`), observed in production workloads
//! [Feitelson & Nitzberg 1995; Squillante et al. 1999]. Each of the paper's
//! five traces fixes `(σ, μ)` and a target job count over a ~3,585 s horizon.
//!
//! [`LognormalArrivals`] samples exactly `count` arrival instants whose
//! density over `(0, horizon]` is proportional to `R_ln`, via a numerically
//! tabulated inverse CDF. A homogeneous [`PoissonArrivals`] process is
//! provided for synthetic workloads.

use serde::{Deserialize, Serialize};
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};

/// Resolution of the tabulated CDF.
const GRID: usize = 4096;

/// The paper's lognormal arrival-rate process, truncated to `(0, horizon]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LognormalArrivals {
    /// Shape parameter σ of the underlying normal.
    pub sigma: f64,
    /// Location parameter μ of the underlying normal.
    pub mu: f64,
    /// Number of arrivals to generate.
    pub count: usize,
    /// Submission window.
    pub horizon: SimSpan,
}

impl LognormalArrivals {
    /// The rate-shape function `R_ln(t)` (unnormalized density at `t`
    /// seconds).
    pub fn rate(&self, t_secs: f64) -> f64 {
        if t_secs <= 0.0 {
            return 0.0;
        }
        let z = (t_secs.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / ((2.0 * std::f64::consts::PI).sqrt() * self.sigma * t_secs)
    }

    /// Generates `count` arrival instants, sorted ascending.
    ///
    /// Sampling is inverse-CDF over a tabulated integral of [`rate`]
    /// (trapezoid rule on a `GRID`-point grid), so the result is exact up to
    /// grid resolution and fully deterministic for a given `rng` state.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`, the horizon is zero, or `count == 0`.
    ///
    /// [`rate`]: LognormalArrivals::rate
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        assert!(self.sigma > 0.0, "lognormal sigma must be positive");
        assert!(!self.horizon.is_zero(), "arrival horizon must be non-zero");
        assert!(self.count > 0, "arrival count must be positive");
        let t_max = self.horizon.as_secs_f64();
        // Tabulate the CDF of rate() over (0, t_max].
        let dt = t_max / GRID as f64;
        let mut cdf = Vec::with_capacity(GRID + 1);
        cdf.push(0.0);
        let mut acc = 0.0;
        let mut prev = self.rate(1e-9);
        for i in 1..=GRID {
            let t = i as f64 * dt;
            let cur = self.rate(t);
            acc += 0.5 * (prev + cur) * dt;
            cdf.push(acc);
            prev = cur;
        }
        // vr-lint::allow(panic-in-lib, reason = "the loop above pushes one cdf entry per class and classes were checked non-empty")
        let total = *cdf.last().expect("cdf is non-empty");
        assert!(
            total > 0.0,
            "lognormal rate integrates to zero over the horizon; check sigma/mu"
        );
        // Inverse-CDF sample `count` points.
        let mut times: Vec<SimTime> = (0..self.count)
            .map(|_| {
                let target = rng.uniform() * total;
                let idx = cdf.partition_point(|c| *c < target).min(GRID);
                let lo = idx.saturating_sub(1);
                let seg = cdf[idx] - cdf[lo];
                let frac = if seg > 0.0 {
                    (target - cdf[lo]) / seg
                } else {
                    0.0
                };
                let t = (lo as f64 + frac) * dt;
                SimTime::from_secs_f64(t.clamp(0.0, t_max))
            })
            .collect();
        times.sort_unstable();
        times
    }
}

/// A bursty ON/OFF arrival process: alternating busy and quiet phases with
/// Poisson arrivals during the busy phases. Models the "expected and
/// unexpected workload fluctuation of service demands" the conclusion says
/// clusters must accommodate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstyArrivals {
    /// Arrival rate during ON phases, per second.
    pub on_rate_per_sec: f64,
    /// Mean ON-phase length in seconds (exponentially distributed).
    pub mean_on_secs: f64,
    /// Mean OFF-phase length in seconds (exponentially distributed).
    pub mean_off_secs: f64,
    /// Number of arrivals to generate.
    pub count: usize,
}

impl BurstyArrivals {
    /// Generates `count` arrival instants, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if any rate or mean is not strictly positive.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        assert!(self.on_rate_per_sec > 0.0, "on rate must be positive");
        assert!(
            self.mean_on_secs > 0.0 && self.mean_off_secs > 0.0,
            "phase means must be positive"
        );
        let mut out = Vec::with_capacity(self.count);
        let mut t = 0.0f64;
        'outer: loop {
            // ON phase.
            let on_end = t + rng.exponential(1.0 / self.mean_on_secs);
            loop {
                t += rng.exponential(self.on_rate_per_sec);
                if t > on_end {
                    t = on_end;
                    break;
                }
                out.push(SimTime::from_secs_f64(t));
                if out.len() == self.count {
                    break 'outer;
                }
            }
            // OFF phase.
            t += rng.exponential(1.0 / self.mean_off_secs);
        }
        out
    }
}

/// A diurnal arrival process: a raised-cosine daily rate profile, peaking
/// mid-"day". Used for long-horizon scheduling experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalArrivals {
    /// Mean arrivals per second across the whole period.
    pub mean_rate_per_sec: f64,
    /// Length of one day-cycle in seconds.
    pub period_secs: f64,
    /// Number of arrivals to generate.
    pub count: usize,
}

impl DiurnalArrivals {
    /// The (unnormalized) instantaneous rate at `t` seconds: a raised
    /// cosine with its peak at mid-period.
    pub fn rate(&self, t_secs: f64) -> f64 {
        let phase = (t_secs / self.period_secs) * 2.0 * std::f64::consts::PI;
        self.mean_rate_per_sec * (1.0 - phase.cos())
    }

    /// Generates `count` arrival instants by thinning a homogeneous
    /// process at twice the mean rate, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the rate or period is not strictly positive.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        assert!(self.mean_rate_per_sec > 0.0, "rate must be positive");
        assert!(self.period_secs > 0.0, "period must be positive");
        let envelope = 2.0 * self.mean_rate_per_sec;
        let mut out = Vec::with_capacity(self.count);
        let mut t = 0.0f64;
        while out.len() < self.count {
            t += rng.exponential(envelope);
            if rng.uniform() * envelope < self.rate(t) {
                out.push(SimTime::from_secs_f64(t));
            }
        }
        out
    }
}

/// A homogeneous Poisson arrival process (for synthetic workloads).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Mean arrivals per second.
    pub rate_per_sec: f64,
    /// Number of arrivals to generate.
    pub count: usize,
}

impl PoissonArrivals {
    /// Generates `count` arrival instants with exponential inter-arrival
    /// gaps.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let mut t = 0.0;
        (0..self.count)
            .map(|_| {
                t += rng.exponential(self.rate_per_sec);
                SimTime::from_secs_f64(t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace3() -> LognormalArrivals {
        LognormalArrivals {
            sigma: 3.0,
            mu: 3.0,
            count: 578,
            horizon: SimSpan::from_secs(3581),
        }
    }

    #[test]
    fn generates_exactly_count_sorted_in_window() {
        let mut rng = SimRng::seed_from(1);
        let arr = trace3();
        let times = arr.generate(&mut rng);
        assert_eq!(times.len(), 578);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| *t <= SimTime::from_secs(3581)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = trace3().generate(&mut SimRng::seed_from(9));
        let b = trace3().generate(&mut SimRng::seed_from(9));
        let c = trace3().generate(&mut SimRng::seed_from(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_is_zero_at_or_before_time_zero() {
        let arr = trace3();
        assert_eq!(arr.rate(0.0), 0.0);
        assert_eq!(arr.rate(-5.0), 0.0);
        assert!(arr.rate(20.0) > 0.0);
    }

    #[test]
    fn rate_peaks_near_lognormal_mode() {
        // Mode of lognormal(mu, sigma) is exp(mu - sigma^2).
        let arr = LognormalArrivals {
            sigma: 0.5,
            mu: 5.0,
            count: 10,
            horizon: SimSpan::from_secs(3600),
        };
        let mode = (5.0f64 - 0.25).exp();
        let at_mode = arr.rate(mode);
        for t in [mode * 0.5, mode * 2.0] {
            assert!(arr.rate(t) < at_mode, "rate not peaked at mode");
        }
    }

    #[test]
    fn smaller_sigma_mu_concentrates_arrivals_earlier() {
        // Trace-5 (sigma=mu=1.5, "highly intensive") front-loads arrivals
        // compared to trace-1 (sigma=mu=4.0, "light").
        let rng = SimRng::seed_from(3);
        let light = LognormalArrivals {
            sigma: 4.0,
            mu: 4.0,
            count: 359,
            horizon: SimSpan::from_secs(3586),
        }
        .generate(&mut rng.fork(1));
        let intense = LognormalArrivals {
            sigma: 1.5,
            mu: 1.5,
            count: 777,
            horizon: SimSpan::from_secs(3582),
        }
        .generate(&mut rng.fork(2));
        let median = |v: &[SimTime]| v[v.len() / 2].as_secs_f64();
        assert!(
            median(&intense) < median(&light),
            "intense median {} should precede light median {}",
            median(&intense),
            median(&light)
        );
    }

    #[test]
    fn poisson_interarrivals_have_the_right_mean() {
        let mut rng = SimRng::seed_from(4);
        let times = PoissonArrivals {
            rate_per_sec: 2.0,
            count: 20_000,
        }
        .generate(&mut rng);
        assert_eq!(times.len(), 20_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let total = times.last().unwrap().as_secs_f64();
        let mean_gap = total / 20_000.0;
        assert!((mean_gap - 0.5).abs() < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn bursty_arrivals_cluster_in_on_phases() {
        let mut rng = SimRng::seed_from(11);
        let times = BurstyArrivals {
            on_rate_per_sec: 5.0,
            mean_on_secs: 10.0,
            mean_off_secs: 100.0,
            count: 400,
        }
        .generate(&mut rng);
        assert_eq!(times.len(), 400);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Burstiness: the coefficient of variation of inter-arrival gaps
        // exceeds 1 (a Poisson process would sit at ~1).
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "cv {cv} not bursty");
    }

    #[test]
    fn diurnal_rate_peaks_mid_period() {
        let d = DiurnalArrivals {
            mean_rate_per_sec: 1.0,
            period_secs: 86_400.0,
            count: 10,
        };
        assert!(d.rate(43_200.0) > d.rate(1_000.0));
        assert!(d.rate(0.0) < 1e-6); // trough at period start
        assert!((d.rate(43_200.0) - 2.0).abs() < 1e-9); // peak = 2x mean
    }

    #[test]
    fn diurnal_arrivals_follow_the_profile() {
        let mut rng = SimRng::seed_from(13);
        let d = DiurnalArrivals {
            mean_rate_per_sec: 0.5,
            period_secs: 1_000.0,
            count: 2_000,
        };
        let times = d.generate(&mut rng);
        assert_eq!(times.len(), 2_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Mid-period halves receive more arrivals than the edges.
        let mut mid = 0usize;
        for t in &times {
            let phase = t.as_secs_f64() % 1_000.0;
            if (250.0..750.0).contains(&phase) {
                mid += 1;
            }
        }
        let frac = mid as f64 / 2_000.0;
        assert!(frac > 0.7, "mid-period fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn invalid_sigma_panics() {
        LognormalArrivals {
            sigma: 0.0,
            mu: 1.0,
            count: 1,
            horizon: SimSpan::from_secs(10),
        }
        .generate(&mut SimRng::seed_from(0));
    }
}
