fn read_raw() -> u64 {
    Instant::now();
    0
}

pub fn leaks_timing() -> u64 {
    read_raw()
}
