//! Virtual reconfiguration on a **heterogeneous** cluster (§2.3, §6): when
//! workstations differ in memory size, the reservation policy should prefer
//! the large-memory workstations as reserved nodes, so jobs too big for a
//! small node still get dedicated service.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use vrecon_repro::prelude::*;

fn main() {
    // 16 workstations: 4 with 384 MB, 12 with 128 MB.
    let cluster = ClusterParams::heterogeneous(16, 4);
    println!(
        "heterogeneous cluster: {} nodes, average user memory {}",
        cluster.size(),
        cluster.average_user_memory()
    );

    // The blocking workload sized against the *small* node memory: giants
    // balloon to ~92 MB, which fits a 384 MB node easily but strains the
    // 128 MB ones.
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));

    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(7)).run(&trace);
        println!("\n--- {policy} ---");
        println!("{}", report.brief());
        if policy == PolicyKind::VReconfiguration {
            // Where did the reconfiguration land the big jobs? Per-node
            // admission counters tell the story: the big-memory nodes
            // (ids 0..4) should carry a disproportionate share.
            let big: u64 = report.node_counters[..4].iter().map(|c| c.admitted).sum();
            let small: u64 = report.node_counters[4..].iter().map(|c| c.admitted).sum();
            println!(
                "admissions: {:.1} per big-memory node vs {:.1} per small node",
                big as f64 / 4.0,
                small as f64 / 12.0
            );
            println!(
                "reservations {} / served {} — candidates are chosen by largest \
                 idle memory, which §2.3 notes favours large-memory nodes",
                report.reservations.started, report.reservations.jobs_served
            );
        }
    }
}
