//! Robustness of the simulation driver under degenerate and adversarial
//! configurations.

use vrecon_repro::prelude::*;

fn tiny_cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(2);
    c
}

fn one_job_trace(ws_mb: u64, work_secs: u64) -> Trace {
    Trace {
        name: "one-job".into(),
        jobs: vec![JobSpec {
            id: JobId(0),
            name: "solo".into(),
            class: JobClass::CpuIntensive,
            submit: SimTime::from_secs(1),
            cpu_work: SimSpan::from_secs(work_secs),
            memory: MemoryProfile::constant(Bytes::from_mb(ws_mb)),
            io_rate: 0.0,
            malleable: None,
        }],
    }
}

#[test]
fn single_job_on_single_policy_matrix() {
    for policy in PolicyKind::ALL {
        let report = Simulation::new(SimConfig::new(tiny_cluster(), policy).with_seed(1))
            .run(&one_job_trace(10, 30));
        assert!(report.all_completed(), "{policy}");
        let job = &report.jobs[0];
        // A lone small job runs undisturbed: slowdown ~1 (remote submission
        // may add its 0.1s).
        assert!(
            job.slowdown() < 1.02,
            "{policy}: slowdown {}",
            job.slowdown()
        );
        assert_eq!(
            job.completed_at
                .unwrap()
                .saturating_since(job.spec.submit)
                .as_secs_f64()
                .round(),
            job.breakdown.wall().round(),
            "{policy}"
        );
    }
}

#[test]
fn mass_burst_at_time_zero_completes() {
    // Every job submitted at the same instant: the pathological burst.
    let mut rng = SimRng::seed_from(3);
    let jobs: Vec<JobSpec> = (0..60)
        .map(|i| JobSpec {
            id: JobId(i),
            name: format!("burst-{i}"),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs_f64(rng.uniform_range(10.0, 120.0)),
            memory: MemoryProfile::constant(Bytes::from_mb_f64(rng.uniform_range(5.0, 60.0))),
            io_rate: 0.0,
            malleable: None,
        })
        .collect();
    let trace = Trace {
        name: "mass-burst".into(),
        jobs,
    };
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(8);
        let report = Simulation::new(SimConfig::new(cluster, policy).with_seed(5)).run(&trace);
        assert!(
            report.all_completed(),
            "{policy}: {}",
            report.unfinished_jobs
        );
        report.check_breakdown_identity(0.05).unwrap();
    }
}

#[test]
fn horizon_cutoff_reports_unfinished_jobs_without_panicking() {
    let mut config = SimConfig::new(tiny_cluster(), PolicyKind::GLoadSharing).with_seed(1);
    config.max_sim_time = SimSpan::from_secs(10); // far too short
    let report = Simulation::new(config).run(&one_job_trace(10, 600));
    assert!(!report.all_completed());
    assert_eq!(report.unfinished_jobs, 1);
    // The partial job is still reported with its accumulated breakdown.
    assert_eq!(report.jobs.len(), 1);
    assert!(report.jobs[0].completed_at.is_none());
    assert!(report.jobs[0].breakdown.cpu > 0.0);
}

#[test]
fn job_arriving_after_horizon_counts_as_unfinished() {
    let mut config = SimConfig::new(tiny_cluster(), PolicyKind::GLoadSharing).with_seed(1);
    config.max_sim_time = SimSpan::from_secs(10);
    let mut trace = one_job_trace(10, 5);
    trace.jobs[0].submit = SimTime::from_secs(100); // never arrives
    let report = Simulation::new(config).run(&trace);
    assert_eq!(report.unfinished_jobs, 1);
}

#[test]
fn single_node_cluster_works() {
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(1);
    let trace = one_job_trace(10, 30);
    for policy in PolicyKind::ALL {
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(1)).run(&trace);
        assert!(report.all_completed(), "{policy}");
    }
}

#[test]
fn fairness_metrics_on_real_runs() {
    use vrecon_repro::metrics::fairness::{jain_index, worst_to_mean};
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(8);
    let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
    let report =
        Simulation::new(SimConfig::new(cluster, PolicyKind::VReconfiguration).with_seed(7))
            .run(&trace);
    let slowdowns: Vec<f64> = report.jobs.iter().map(|j| j.slowdown()).collect();
    let jain = jain_index(&slowdowns);
    assert!((0.0..=1.0).contains(&jain), "jain {jain}");
    assert!(worst_to_mean(&slowdowns) >= 1.0);
}
