//! Stable content hashing for scenario descriptors and cache keys.
//!
//! The experiment runner addresses cached results by a content hash of the
//! full scenario description (cluster + trace + policy + seed + fault
//! plan). The hash must be stable across runs and processes — Rust's
//! `DefaultHasher` is explicitly *not* (its keys are unspecified), so this
//! module pins down FNV-1a in its 128-bit variant: tiny, dependency-free,
//! deterministic everywhere, and wide enough that accidental collisions in
//! a result cache are not a practical concern.
//!
//! ```
//! use vr_simcore::hash::{fnv1a128, hex128};
//!
//! let h = fnv1a128(b"hello");
//! assert_eq!(h, fnv1a128(b"hello"));
//! assert_ne!(h, fnv1a128(b"hello!"));
//! assert_eq!(hex128(h).len(), 32);
//! ```

/// FNV-1a 128-bit offset basis.
const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hashes `bytes` with FNV-1a (128-bit).
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// Incremental FNV-1a 128-bit hasher for multi-part keys.
///
/// Feeding parts separately is *not* equivalent to hashing their
/// concatenation ambiguously: [`Fnv128::write_delimited`] inserts a length
/// prefix so `("ab", "c")` and `("a", "bc")` hash differently.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv128 { state: OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorbs one field, prefixed by its length so field boundaries are
    /// unambiguous.
    pub fn write_delimited(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Formats a 128-bit digest as 32 lowercase hex characters.
pub fn hex128(digest: u128) -> String {
    format!("{digest:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // 128-bit FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv1a128(b""), OFFSET);
        // One byte: (basis ^ b) * prime.
        let expect = (OFFSET ^ u128::from(b'a')).wrapping_mul(PRIME);
        assert_eq!(fnv1a128(b"a"), expect);
    }

    #[test]
    fn incremental_equals_batch() {
        let mut h = Fnv128::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a128(b"hello world"));
    }

    #[test]
    fn delimited_fields_are_unambiguous() {
        let mut a = Fnv128::new();
        a.write_delimited(b"ab");
        a.write_delimited(b"c");
        let mut b = Fnv128::new();
        b.write_delimited(b"a");
        b.write_delimited(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex128(0), "0".repeat(32));
        assert_eq!(hex128(u128::MAX), "f".repeat(32));
        assert_eq!(hex128(fnv1a128(b"x")).len(), 32);
    }
}
