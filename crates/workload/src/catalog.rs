//! The program catalog: static descriptions instantiable into jobs.
//!
//! A [`ProgramSpec`] captures what the paper's Tables 1–2 report about each
//! benchmark program — peak working set, dedicated lifetime, workload class
//! — plus a [`PhaseShape`] describing how the working set evolves with
//! progress. [`ProgramSpec::instantiate`] turns a spec into a concrete
//! [`JobSpec`] with per-job jitter, which is how traces model run-to-run
//! variation of the same program on different inputs.

use serde::{Deserialize, Serialize};
use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile};
use vr_cluster::units::Bytes;
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};

/// How a program's working set evolves over its execution progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseShape {
    /// Constant at the peak for the whole run.
    Flat,
    /// Starts small, steps up to the peak: allocation happens as the program
    /// reads its input. The blocking problem's trigger — a job that looked
    /// harmless at admission then balloons.
    Ramp,
    /// Ramps up to the peak, then releases most memory for a result-writing
    /// tail.
    RampDecay,
}

/// A catalog entry: one benchmark program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramSpec {
    /// Program name as in the paper's tables.
    pub name: &'static str,
    /// The "description" column of the tables.
    pub description: &'static str,
    /// The "input file" / "data size" column.
    pub input: &'static str,
    /// Workload class.
    pub class: JobClass,
    /// Peak working set in MB (the tables' "working set" column).
    pub working_set_mb: f64,
    /// Dedicated-environment lifetime in seconds (the tables' "lifetime").
    pub lifetime_secs: f64,
    /// Average I/O operations per second (metadata; see
    /// [`JobSpec::io_rate`](vr_cluster::job::JobSpec)).
    pub io_rate: f64,
    /// Working-set evolution shape.
    pub shape: PhaseShape,
}

impl ProgramSpec {
    /// Builds the memory profile for a given peak working set and CPU work.
    fn memory_profile(&self, peak: Bytes, cpu_work: SimSpan) -> MemoryProfile {
        let work = cpu_work.as_secs_f64();
        let at = |frac: f64| SimSpan::from_secs_f64(work * frac);
        match self.shape {
            PhaseShape::Flat => MemoryProfile::constant(peak),
            PhaseShape::Ramp => MemoryProfile::from_phases(vec![
                (at(0.05), peak.mul_f64(0.25)),
                (at(0.15), peak.mul_f64(0.60)),
                (SimSpan::MAX, peak),
            ])
            // vr-lint::allow(panic-in-lib, reason = "phase boundaries are literal fractions in ascending order")
            .expect("ramp boundaries are strictly increasing"),
            PhaseShape::RampDecay => MemoryProfile::from_phases(vec![
                (at(0.05), peak.mul_f64(0.25)),
                (at(0.15), peak.mul_f64(0.60)),
                (at(0.85), peak),
                (SimSpan::MAX, peak.mul_f64(0.40)),
            ])
            // vr-lint::allow(panic-in-lib, reason = "phase boundaries are literal fractions in ascending order")
            .expect("ramp-decay boundaries are strictly increasing"),
        }
    }

    /// Instantiates a concrete job from this program.
    ///
    /// `jitter` (in `[0, 1)`) scales both the lifetime and the peak working
    /// set by independent uniform factors in `[1 − jitter, 1 + jitter]`,
    /// modelling input variation between submissions of the same program.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1)` (propagated from
    /// [`SimRng::jitter`]).
    pub fn instantiate(
        &self,
        id: JobId,
        submit: SimTime,
        rng: &mut SimRng,
        jitter: f64,
    ) -> JobSpec {
        let lifetime = rng.jitter(self.lifetime_secs, jitter);
        let peak_mb = rng.jitter(self.working_set_mb, jitter);
        let cpu_work = SimSpan::from_secs_f64(lifetime);
        let peak = Bytes::from_mb_f64(peak_mb);
        JobSpec {
            id,
            name: self.name.to_owned(),
            class: self.class,
            submit,
            cpu_work,
            memory: self.memory_profile(peak, cpu_work),
            io_rate: self.io_rate,
            malleable: None,
        }
    }

    /// A copy of this program with its dedicated lifetime scaled by
    /// `factor` (working set unchanged).
    ///
    /// Used by the trace builders to place the paper's five arrival
    /// intensities across the under- to over-saturation range of a 32-node
    /// cluster (see `trace::SPEC_LIFETIME_SCALE`): replaying the full
    /// Table 1/2 lifetimes against the paper's submission windows would
    /// oversubscribe the cluster roughly sevenfold at every intensity,
    /// leaving no contrast between "light" and "highly intensive" traces.
    /// Relative lifetimes — and the correlation between memory demand and
    /// lifetime the reconfiguration argument relies on — are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scale_lifetime(&self, factor: f64) -> ProgramSpec {
        assert!(
            factor.is_finite() && factor > 0.0,
            "lifetime scale must be positive, got {factor}"
        );
        ProgramSpec {
            lifetime_secs: self.lifetime_secs * factor,
            ..self.clone()
        }
    }

    /// Peak working set as [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `working_set_mb` is negative or NaN.
    pub fn working_set(&self) -> Bytes {
        Bytes::from_mb_f64(self.working_set_mb)
    }

    /// Dedicated lifetime as a span.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime_secs` is negative, NaN, or too large to
    /// represent.
    pub fn lifetime(&self) -> SimSpan {
        SimSpan::from_secs_f64(self.lifetime_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(shape: PhaseShape) -> ProgramSpec {
        ProgramSpec {
            name: "prog",
            description: "test program",
            input: "in.dat",
            class: JobClass::MemoryIntensive,
            working_set_mb: 100.0,
            lifetime_secs: 200.0,
            io_rate: 1.0,
            shape,
        }
    }

    #[test]
    fn flat_instantiation_without_jitter_matches_spec() {
        let mut rng = SimRng::seed_from(1);
        let job =
            program(PhaseShape::Flat).instantiate(JobId(7), SimTime::from_secs(3), &mut rng, 0.0);
        assert_eq!(job.id, JobId(7));
        assert_eq!(job.submit, SimTime::from_secs(3));
        assert_eq!(job.cpu_work, SimSpan::from_secs(200));
        assert_eq!(job.max_working_set(), Bytes::from_mb(100));
        assert_eq!(job.memory.phases().len(), 1);
    }

    #[test]
    fn ramp_grows_to_peak() {
        let mut rng = SimRng::seed_from(1);
        let job = program(PhaseShape::Ramp).instantiate(JobId(1), SimTime::ZERO, &mut rng, 0.0);
        let ws_early = job.memory.working_set_at(SimSpan::ZERO);
        let ws_late = job.memory.working_set_at(SimSpan::from_secs(100));
        assert!(ws_early < ws_late);
        assert_eq!(ws_late, Bytes::from_mb(100));
        assert_eq!(ws_early, Bytes::from_mb(25));
    }

    #[test]
    fn ramp_decay_releases_memory_at_the_tail() {
        let mut rng = SimRng::seed_from(1);
        let job =
            program(PhaseShape::RampDecay).instantiate(JobId(1), SimTime::ZERO, &mut rng, 0.0);
        let ws_mid = job.memory.working_set_at(SimSpan::from_secs(100));
        let ws_tail = job.memory.working_set_at(SimSpan::from_secs(190));
        assert_eq!(ws_mid, Bytes::from_mb(100));
        assert_eq!(ws_tail, Bytes::from_mb(40));
        assert_eq!(job.max_working_set(), Bytes::from_mb(100));
    }

    #[test]
    fn jitter_varies_but_stays_bounded() {
        let mut rng = SimRng::seed_from(42);
        let spec = program(PhaseShape::Flat);
        let mut lifetimes = Vec::new();
        for i in 0..50 {
            let job = spec.instantiate(JobId(i), SimTime::ZERO, &mut rng, 0.2);
            let life = job.cpu_work.as_secs_f64();
            assert!((160.0..=240.0).contains(&life), "lifetime {life}");
            let ws = job.max_working_set().as_mb_f64();
            assert!((80.0..=120.0).contains(&ws), "ws {ws}");
            lifetimes.push(life);
        }
        let all_same = lifetimes.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "jitter produced identical lifetimes");
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let spec = program(PhaseShape::Ramp);
        let a = spec.instantiate(JobId(1), SimTime::ZERO, &mut SimRng::seed_from(5), 0.2);
        let b = spec.instantiate(JobId(1), SimTime::ZERO, &mut SimRng::seed_from(5), 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn accessors() {
        let spec = program(PhaseShape::Flat);
        assert_eq!(spec.working_set(), Bytes::from_mb(100));
        assert_eq!(spec.lifetime(), SimSpan::from_secs(200));
    }
}
