//! Aggregating completed jobs into the paper's reported quantities.
//!
//! For a finished run, [`WorkloadSummary::of_jobs`] computes the totals of
//! §5's decomposition (`T_cpu`, `T_page`, `T_que`, `T_mig`, and their sum
//! `T_exe`), the average slowdown (§4's primary metric), and slowdown
//! distribution statistics.

use serde::{Deserialize, Serialize};
use vr_cluster::job::{RunningJob, TimeBreakdown};
use vr_simcore::stats::{percentile, Summary};

/// Totals and averages over all jobs of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Number of jobs aggregated.
    pub jobs: usize,
    /// Component-wise total execution time (the paper's `T_exe` and its
    /// breakdown), in seconds.
    pub totals: TimeBreakdown,
    /// Mean of per-job slowdowns (the paper's "average slowdown").
    pub avg_slowdown: f64,
    /// Distribution of per-job slowdowns.
    pub slowdown: Summary,
    /// Median per-job slowdown.
    pub median_slowdown: f64,
    /// 95th-percentile slowdown (tail behaviour of the blocked jobs).
    pub p95_slowdown: f64,
    /// Total preemptive migrations endured across all jobs.
    pub migrations: u64,
    /// Jobs whose first placement was remote.
    pub remote_submissions: u64,
}

impl WorkloadSummary {
    /// Aggregates a set of completed jobs.
    ///
    /// Jobs that never completed are still aggregated with their partial
    /// breakdowns; callers that care should check completion separately.
    // vr-analyze::allow(panic-path, reason = "percentile() runs only on a non-empty sorted buffer with the constant quantiles 0.5/0.95")
    pub fn of_jobs<'a, I>(jobs: I) -> WorkloadSummary
    where
        I: IntoIterator<Item = &'a RunningJob>,
    {
        let mut totals = TimeBreakdown::default();
        let mut slowdowns = Vec::new();
        let mut migrations = 0u64;
        let mut remote = 0u64;
        for job in jobs {
            totals = totals.add(&job.breakdown);
            slowdowns.push(job.slowdown());
            migrations += u64::from(job.migrations);
            remote += u64::from(job.remote_submitted);
        }
        let summary = Summary::of(slowdowns.iter().copied());
        // vr-lint::allow(panic-in-lib, reason = "comparator contract: slowdowns are ratios of positive durations, never NaN")
        slowdowns.sort_by(|a, b| a.partial_cmp(b).expect("slowdowns are never NaN"));
        let (median, p95) = if slowdowns.is_empty() {
            (0.0, 0.0)
        } else {
            (percentile(&slowdowns, 0.5), percentile(&slowdowns, 0.95))
        };
        WorkloadSummary {
            jobs: slowdowns.len(),
            totals,
            avg_slowdown: summary.mean,
            slowdown: summary,
            median_slowdown: median,
            p95_slowdown: p95,
            migrations,
            remote_submissions: remote,
        }
    }

    /// Total execution time `T_exe` in seconds.
    pub fn total_execution_secs(&self) -> f64 {
        self.totals.wall()
    }

    /// Total queuing time `T_que` in seconds.
    pub fn total_queue_secs(&self) -> f64 {
        self.totals.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::job::{JobClass, JobId, JobSpec, JobState, MemoryProfile};
    use vr_cluster::units::Bytes;
    use vr_simcore::time::{SimSpan, SimTime};

    fn job(id: u64, cpu: f64, page: f64, queue: f64, mig: f64, migrations: u32) -> RunningJob {
        let mut j = RunningJob::new(JobSpec {
            id: JobId(id),
            name: "t".into(),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs_f64(cpu),
            memory: MemoryProfile::constant(Bytes::from_mb(10)),
            io_rate: 0.0,
            malleable: None,
        });
        j.breakdown = TimeBreakdown {
            cpu,
            page,
            queue,
            migration: mig,
        };
        j.migrations = migrations;
        j.state = JobState::Completed;
        j
    }

    #[test]
    fn totals_sum_components() {
        let jobs = vec![
            job(0, 100.0, 10.0, 30.0, 0.0, 0),
            job(1, 50.0, 0.0, 25.0, 5.0, 1),
        ];
        let s = WorkloadSummary::of_jobs(&jobs);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.totals.cpu, 150.0);
        assert_eq!(s.totals.page, 10.0);
        assert_eq!(s.totals.queue, 55.0);
        assert_eq!(s.totals.migration, 5.0);
        assert_eq!(s.total_execution_secs(), 220.0);
        assert_eq!(s.total_queue_secs(), 55.0);
        assert_eq!(s.migrations, 1);
    }

    #[test]
    fn avg_slowdown_is_mean_of_per_job_slowdowns() {
        let jobs = vec![
            job(0, 100.0, 0.0, 100.0, 0.0, 0),   // slowdown 2.0
            job(1, 100.0, 100.0, 200.0, 0.0, 0), // slowdown 4.0
        ];
        let s = WorkloadSummary::of_jobs(&jobs);
        assert!((s.avg_slowdown - 3.0).abs() < 1e-12);
        assert!((s.median_slowdown - 3.0).abs() < 1e-12);
        assert!(s.p95_slowdown > 3.0);
    }

    #[test]
    fn empty_run_is_zeroed() {
        let s = WorkloadSummary::of_jobs(std::iter::empty());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.avg_slowdown, 0.0);
        assert_eq!(s.median_slowdown, 0.0);
        assert_eq!(s.total_execution_secs(), 0.0);
    }

    #[test]
    fn remote_submissions_counted() {
        let mut j = job(0, 10.0, 0.0, 0.0, 0.1, 0);
        j.remote_submitted = true;
        let s = WorkloadSummary::of_jobs(std::iter::once(&j));
        assert_eq!(s.remote_submissions, 1);
    }
}
