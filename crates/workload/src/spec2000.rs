//! Workload group 1: the six SPEC CPU2000 programs of Table 1.
//!
//! The source text of the paper garbles most of Table 1's numeric cells (only
//! apsi's 2,619.0 s lifetime and 191.84 MB working set survive legibly), so
//! the remaining values are **reconstructed** from published SPEC CPU2000
//! memory-footprint measurements of the same era and from relative runtimes
//! on ~400 MHz Pentium II hardware. What the reproduction depends on is
//! preserved exactly:
//!
//! * several programs (apsi, mcf, gzip, bzip2) have peak working sets close
//!   to **half of a 384 MB node** — two of them co-resident oversubscribe the
//!   node, which is the seed of the job blocking problem;
//! * vortex and gcc are moderate, so the workload is *not* equally sized
//!   (the paper's §5 condition 2 for V-R to be useful);
//! * lifetimes are long (hundreds to thousands of seconds) and positively
//!   correlated with memory demand, so a faulting large job is also a
//!   long-remaining job (§2.2, point 2).

use vr_cluster::job::JobClass;

use crate::catalog::{PhaseShape, ProgramSpec};

/// The six SPEC CPU2000 programs of workload group 1 (Table 1).
pub fn programs() -> Vec<ProgramSpec> {
    vec![
        ProgramSpec {
            name: "apsi",
            description: "climate modeling",
            input: "apsi.in",
            class: JobClass::CpuMemoryIntensive,
            working_set_mb: 191.84, // legible in the paper's Table 1
            lifetime_secs: 2619.0,  // legible in the paper's Table 1
            io_rate: 0.5,
            shape: PhaseShape::Ramp,
        },
        ProgramSpec {
            name: "gcc",
            description: "optimized C compiler",
            input: "166.i",
            class: JobClass::CpuMemoryIntensive,
            working_set_mb: 154.7, // reconstructed (published footprint ~155 MB)
            lifetime_secs: 620.0,
            io_rate: 2.0,
            shape: PhaseShape::RampDecay,
        },
        ProgramSpec {
            name: "gzip",
            description: "data compression",
            input: "input.graphic",
            class: JobClass::CpuMemoryIntensive,
            working_set_mb: 180.6, // reconstructed (published footprint ~181 MB)
            lifetime_secs: 910.0,
            io_rate: 4.0,
            shape: PhaseShape::Flat,
        },
        ProgramSpec {
            name: "mcf",
            description: "combinatorial optimization",
            input: "inp.in",
            class: JobClass::MemoryIntensive,
            working_set_mb: 190.0, // reconstructed (published footprint ~190 MB)
            lifetime_secs: 1820.0,
            io_rate: 0.2,
            shape: PhaseShape::Ramp,
        },
        ProgramSpec {
            name: "vortex",
            description: "database",
            input: "lendian1.raw",
            class: JobClass::CpuIntensive,
            working_set_mb: 72.2, // reconstructed (published footprint ~72 MB)
            lifetime_secs: 1300.0,
            io_rate: 3.0,
            shape: PhaseShape::Flat,
        },
        ProgramSpec {
            name: "bzip",
            description: "data compression",
            input: "input.graphic",
            class: JobClass::CpuMemoryIntensive,
            working_set_mb: 184.9, // reconstructed (published footprint ~185 MB)
            lifetime_secs: 1520.0,
            io_rate: 4.0,
            shape: PhaseShape::Flat,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::units::Bytes;

    #[test]
    fn six_programs_as_in_table_1() {
        let p = programs();
        assert_eq!(p.len(), 6);
        let names: Vec<&str> = p.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["apsi", "gcc", "gzip", "mcf", "vortex", "bzip"]);
    }

    #[test]
    fn apsi_matches_the_legible_paper_values() {
        let p = programs();
        let apsi = &p[0];
        assert!((apsi.working_set_mb - 191.84).abs() < 1e-9);
        assert!((apsi.lifetime_secs - 2619.0).abs() < 1e-9);
    }

    #[test]
    fn several_programs_approach_half_of_a_384mb_node() {
        // The structural property driving the blocking problem in cluster 1.
        let big = programs()
            .iter()
            .filter(|p| p.working_set() > Bytes::from_mb(170))
            .count();
        assert!(big >= 4, "expected >=4 near-half-node programs, got {big}");
    }

    #[test]
    fn workload_is_not_equally_sized() {
        // §5 condition 2: V-R only helps when memory demands differ.
        let p = programs();
        let min = p.iter().map(|s| s.working_set_mb).fold(f64::MAX, f64::min);
        let max = p.iter().map(|s| s.working_set_mb).fold(0.0, f64::max);
        assert!(max / min > 2.0, "spread {min}..{max} too narrow");
    }

    #[test]
    fn lifetimes_are_long_running() {
        for p in programs() {
            assert!(
                p.lifetime_secs >= 600.0,
                "{} lifetime {} too short for group 1",
                p.name,
                p.lifetime_secs
            );
        }
    }
}
