//! Per-workstation utilization and load-imbalance summaries.
//!
//! "Load sharing provides a system mechanism ... aiming at fully utilizing
//! system resources" (§1). These helpers turn per-node counters into the
//! utilization picture: how much CPU each workstation actually delivered,
//! how much it stalled on paging, and how unevenly the work spread.

use serde::{Deserialize, Serialize};
use vr_cluster::node::NodeCounters;
use vr_simcore::stats::Summary;
use vr_simcore::time::SimTime;

/// One workstation's utilization over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeUtilization {
    /// Node index (position in the cluster).
    pub node: usize,
    /// Fraction of the run's wall-clock time spent delivering CPU service.
    pub cpu_utilization: f64,
    /// Fraction of the run's wall-clock time its jobs stalled on faults.
    pub page_stall_fraction: f64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs completed here.
    pub completed: u64,
}

/// Cluster-wide utilization summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Per-node figures, in node order.
    pub nodes: Vec<NodeUtilization>,
    /// Distribution of per-node CPU utilizations.
    pub cpu: Summary,
    /// Max/min ratio of per-node delivered CPU (∞ when a node idled
    /// completely) — a coarse imbalance indicator.
    pub imbalance_ratio: f64,
}

impl UtilizationSummary {
    /// Builds the summary from per-node counters and the run's makespan.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is empty or the makespan is zero.
    pub fn from_counters(counters: &[NodeCounters], makespan: SimTime) -> Self {
        assert!(!counters.is_empty(), "utilization of an empty cluster");
        let wall = makespan.as_secs_f64();
        assert!(wall > 0.0, "utilization over a zero makespan");
        let nodes: Vec<NodeUtilization> = counters
            .iter()
            .enumerate()
            .map(|(i, c)| NodeUtilization {
                node: i,
                cpu_utilization: c.delivered_cpu / wall,
                page_stall_fraction: c.page_stall / wall,
                admitted: c.admitted,
                completed: c.completed,
            })
            .collect();
        let cpu = Summary::of(nodes.iter().map(|n| n.cpu_utilization));
        let max = nodes
            .iter()
            .map(|n| n.cpu_utilization)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = nodes
            .iter()
            .map(|n| n.cpu_utilization)
            .fold(f64::INFINITY, f64::min);
        let imbalance_ratio = if min > 0.0 { max / min } else { f64::INFINITY };
        UtilizationSummary {
            nodes,
            cpu,
            imbalance_ratio,
        }
    }

    /// Mean CPU utilization across workstations.
    pub fn mean_cpu_utilization(&self) -> f64 {
        self.cpu.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(cpu: f64, page: f64, admitted: u64, completed: u64) -> NodeCounters {
        NodeCounters {
            delivered_cpu: cpu,
            page_stall: page,
            admitted,
            completed,
            migrated_out: 0,
            io_ops: 0.0,
        }
    }

    #[test]
    fn summarizes_per_node_and_cluster() {
        let c = vec![counters(50.0, 10.0, 3, 3), counters(100.0, 0.0, 5, 5)];
        let s = UtilizationSummary::from_counters(&c, SimTime::from_secs(100));
        assert_eq!(s.nodes.len(), 2);
        assert!((s.nodes[0].cpu_utilization - 0.5).abs() < 1e-12);
        assert!((s.nodes[0].page_stall_fraction - 0.1).abs() < 1e-12);
        assert!((s.nodes[1].cpu_utilization - 1.0).abs() < 1e-12);
        assert!((s.mean_cpu_utilization() - 0.75).abs() < 1e-12);
        assert!((s.imbalance_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn idle_node_gives_infinite_imbalance() {
        let c = vec![counters(10.0, 0.0, 1, 1), counters(0.0, 0.0, 0, 0)];
        let s = UtilizationSummary::from_counters(&c, SimTime::from_secs(10));
        assert!(s.imbalance_ratio.is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        UtilizationSummary::from_counters(&[], SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "zero makespan")]
    fn zero_makespan_panics() {
        UtilizationSummary::from_counters(&[counters(1.0, 0.0, 1, 1)], SimTime::ZERO);
    }
}
