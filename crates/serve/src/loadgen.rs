//! The `vrecon loadgen` driver: exercises a running `vrecon serve`
//! instance through deterministic phases and reduces the measurements
//! into the `BENCH_serve.json` document.
//!
//! Phases, in order:
//!
//! 1. **cold** — POST `specs` distinct fuzzer-generated scenarios at
//!    `concurrency`; each is a cache miss that runs a simulation.
//! 2. **warm** — POST `warm_requests` round-robin over the same specs;
//!    every one must be a cache hit. Latencies and QPS are measured here,
//!    where the server's work is pure cache service.
//! 3. **coalesce** — start one deliberately heavy scenario, wait until
//!    the server reports it in flight, then POST `followers` identical
//!    requests: all of them must coalesce onto the single run.
//! 4. **overload** — fill every admission seat (`max_inflight`, read
//!    from `/stats`) with distinct heavy scenarios, then POST one more:
//!    it must be refused with 503.
//!
//! The phase counts are exact by construction, so `--check` compares
//! them exactly; only latency and QPS are tolerance-gated.

use std::net::SocketAddr;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use vr_check::fuzz::{generate, CheckScenario, ScenarioJob, ScenarioNode};
use vr_metrics::LatencySummary;
use vr_simcore::jsonio::Json;
use vrecon::PolicyKind;

use crate::client::{request, ClientResponse};
use crate::clock::Stopwatch;

/// Load-generation parameters, CLI-shaped.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The server to exercise.
    pub addr: SocketAddr,
    /// Number of distinct scenarios in the cold/warm phases.
    pub specs: usize,
    /// Requests in the warm phase (round-robin over the specs).
    pub warm_requests: usize,
    /// Client threads for the cold and warm phases.
    pub concurrency: usize,
    /// Seed for scenario generation.
    pub seed: u64,
    /// Identical concurrent requests in the coalesce phase.
    pub followers: usize,
    /// Job count of the heavy probe scenario (sizes its wall time).
    pub heavy_jobs: usize,
    /// Per-request client timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 7071)),
            specs: 32,
            warm_requests: 256,
            concurrency: 4,
            seed: 42,
            followers: 8,
            // ~1 s of release-build simulation: long enough that the
            // coalesce and overload probes reliably observe it in flight.
            heavy_jobs: 2000,
            timeout: Duration::from_secs(120),
        }
    }
}

/// A scenario that takes real wall time to simulate: a small, memory-
/// starved cluster fed a long stream of paging-heavy jobs. Distinct
/// `variant` values produce distinct content hashes at identical cost,
/// which is what the overload phase needs to fill every admission seat.
pub fn heavy_scenario(variant: u64, jobs: usize) -> CheckScenario {
    CheckScenario {
        nodes: vec![
            ScenarioNode {
                user_mb: 64,
                slots: 2
            };
            4
        ],
        policy: PolicyKind::VReconfiguration,
        policy_params: vrecon::plugin::ParamBag::new(),
        seed: 9_000 + variant,
        max_sim_time_s: 200_000,
        jobs: (0..jobs as u64)
            .map(|i| ScenarioJob {
                submit_us: i * 100_000,
                cpu_work_us: 30_000_000,
                ws_mb: 48,
                malleable: None,
            })
            .collect(),
        fault_plan: None,
    }
}

/// Snapshot of the server counters loadgen cares about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StatsSnapshot {
    hot_hits: u64,
    disk_hits: u64,
    sims_executed: u64,
    coalesced: u64,
    overloads: u64,
    in_flight: u64,
    corrupt_entries: u64,
    max_inflight: u64,
}

impl StatsSnapshot {
    fn hits(&self) -> u64 {
        self.hot_hits + self.disk_hits
    }
}

fn fetch_stats(addr: SocketAddr, timeout: Duration) -> Result<StatsSnapshot, String> {
    let resp = request(addr, "GET", "/stats", "", timeout)?;
    if resp.status != 200 {
        return Err(format!("/stats returned {}", resp.status));
    }
    let doc = Json::parse(&resp.body).map_err(|e| format!("/stats body: {e}"))?;
    let u = |key: &str| -> u64 { doc.get(key).and_then(Json::as_u64).unwrap_or(0) };
    Ok(StatsSnapshot {
        hot_hits: u("hot_hits"),
        disk_hits: u("disk_hits"),
        sims_executed: u("sims_executed"),
        coalesced: u("coalesced"),
        overloads: u("overloads"),
        in_flight: u("in_flight"),
        corrupt_entries: doc
            .get("cache")
            .and_then(|c| c.get("corrupt_entries"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        max_inflight: doc
            .get("config")
            .and_then(|c| c.get("max_inflight"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
    })
}

/// POSTs `body` to `/run`, returning `(response, latency_ms)`.
fn post_run(
    addr: SocketAddr,
    body: &str,
    timeout: Duration,
) -> Result<(ClientResponse, f64), String> {
    let watch = Stopwatch::start();
    let resp = request(addr, "POST", "/run", body, timeout)?;
    Ok((resp, watch.elapsed_ms()))
}

/// Sends every spec in `batch` at `concurrency`, collecting latencies of
/// 200 responses and failing on anything else.
fn run_batch(
    addr: SocketAddr,
    batch: &[String],
    concurrency: usize,
    timeout: Duration,
) -> Result<Vec<f64>, String> {
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(batch.len()));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = concurrency.clamp(1, batch.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(body) = batch.get(i) else { break };
                match post_run(addr, body, timeout) {
                    Ok((resp, ms)) if resp.status == 200 => {
                        latencies
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(ms);
                    }
                    Ok((resp, _)) => {
                        errors
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(format!(
                                "request {i}: status {} ({})",
                                resp.status,
                                resp.body.trim()
                            ))
                    }
                    Err(e) => errors
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(format!("request {i}: {e}")),
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(first) = errors.first() {
        return Err(format!(
            "{} request(s) failed; first: {first}",
            errors.len()
        ));
    }
    Ok(latencies
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner))
}

/// Polls `/stats` until `pred` holds or ~10 s pass.
fn wait_for(
    addr: SocketAddr,
    timeout: Duration,
    what: &str,
    pred: impl Fn(&StatsSnapshot) -> bool,
) -> Result<StatsSnapshot, String> {
    let watch = Stopwatch::start();
    loop {
        let stats = fetch_stats(addr, timeout)?;
        if pred(&stats) {
            return Ok(stats);
        }
        if watch.expired(Duration::from_secs(10)) {
            return Err(format!("timed out waiting for {what}; stats {stats:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn latency_json(summary: &LatencySummary) -> Json {
    Json::obj([
        ("count", Json::U64(summary.count as u64)),
        ("p50_ms", Json::f64(summary.p50_ms)),
        ("p99_ms", Json::f64(summary.p99_ms)),
        ("mean_ms", Json::f64(summary.mean_ms)),
        ("max_ms", Json::f64(summary.max_ms)),
        ("qps", Json::f64(summary.qps)),
    ])
}

/// Runs every phase and returns the `BENCH_serve.json` document.
///
/// # Errors
///
/// Any failed request, unexpected status, or phase that does not reach
/// its expected server state within its poll window.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<Json, String> {
    let addr = config.addr;
    let timeout = config.timeout;
    let specs: Vec<String> = (0..config.specs as u64)
        .map(|i| generate(config.seed, i).render())
        .collect();

    // Phase 1: cold.
    let before = fetch_stats(addr, timeout)?;
    let cold_watch = Stopwatch::start();
    let cold_lat = run_batch(addr, &specs, config.concurrency, timeout)?;
    let cold_wall = cold_watch.elapsed_secs();
    let after_cold = wait_for(addr, timeout, "cold phase drain", |s| s.in_flight == 0)?;
    let cold_sims = after_cold.sims_executed - before.sims_executed;
    let cold_hits = after_cold.hits() - before.hits();

    // Phase 2: warm.
    let warm_batch: Vec<String> = (0..config.warm_requests)
        .map(|i| specs[i % specs.len()].clone())
        .collect();
    let warm_watch = Stopwatch::start();
    let warm_lat = run_batch(addr, &warm_batch, config.concurrency, timeout)?;
    let warm_wall = warm_watch.elapsed_secs();
    let after_warm = fetch_stats(addr, timeout)?;
    let warm_hits = after_warm.hits() - after_cold.hits();
    let warm_sims = after_warm.sims_executed - after_cold.sims_executed;
    let warm_hit_rate = if config.warm_requests > 0 {
        warm_hits as f64 / config.warm_requests as f64
    } else {
        0.0
    };

    // Phase 3: coalesce. One heavy leader; followers join it mid-flight.
    let heavy = heavy_scenario(0, config.heavy_jobs).render();
    let leader = {
        let heavy = heavy.clone();
        std::thread::spawn(move || post_run(addr, &heavy, timeout))
    };
    wait_for(addr, timeout, "heavy leader to be in flight", |s| {
        s.in_flight >= 1
    })?;
    let follower_batch: Vec<String> = vec![heavy; config.followers];
    run_batch(addr, &follower_batch, config.followers.max(1), timeout)?;
    match leader.join() {
        Ok(Ok((resp, _))) if resp.status == 200 => {}
        Ok(Ok((resp, _))) => return Err(format!("heavy leader got status {}", resp.status)),
        Ok(Err(e)) => return Err(format!("heavy leader failed: {e}")),
        Err(_) => return Err("heavy leader thread panicked".to_owned()),
    }
    let after_coalesce = wait_for(addr, timeout, "coalesce drain", |s| s.in_flight == 0)?;
    let coalesced = after_coalesce.coalesced - after_warm.coalesced;
    let coalesce_sims = after_coalesce.sims_executed - after_warm.sims_executed;

    // Phase 4: overload. Fill every admission seat with distinct heavy
    // scenarios, then one more must be shed with 503.
    let seats = after_coalesce.max_inflight as usize;
    if seats == 0 {
        return Err("/stats reported max_inflight 0".to_owned());
    }
    let fillers: Vec<std::thread::JoinHandle<Result<(ClientResponse, f64), String>>> = (0..seats)
        .map(|i| {
            let body = heavy_scenario(1 + i as u64, config.heavy_jobs).render();
            std::thread::spawn(move || post_run(addr, &body, timeout))
        })
        .collect();
    wait_for(addr, timeout, "admission seats to fill", |s| {
        s.in_flight >= seats as u64
    })?;
    let shed = heavy_scenario(1_000, config.heavy_jobs).render();
    let (shed_resp, _) = post_run(addr, &shed, timeout)?;
    if shed_resp.status != 503 {
        return Err(format!(
            "expected 503 past max_inflight, got {}",
            shed_resp.status
        ));
    }
    for (i, filler) in fillers.into_iter().enumerate() {
        match filler.join() {
            Ok(Ok((resp, _))) if resp.status == 200 => {}
            Ok(Ok((resp, _))) => return Err(format!("filler {i} got status {}", resp.status)),
            Ok(Err(e)) => return Err(format!("filler {i} failed: {e}")),
            Err(_) => return Err(format!("filler {i} thread panicked")),
        }
    }
    let after_overload = wait_for(addr, timeout, "overload drain", |s| s.in_flight == 0)?;
    let overloads = after_overload.overloads - after_coalesce.overloads;

    Ok(Json::obj([
        ("schema_version", Json::U64(1)),
        (
            "config",
            Json::obj([
                ("specs", Json::U64(config.specs as u64)),
                ("warm_requests", Json::U64(config.warm_requests as u64)),
                ("concurrency", Json::U64(config.concurrency as u64)),
                ("seed", Json::U64(config.seed)),
                ("followers", Json::U64(config.followers as u64)),
                ("heavy_jobs", Json::U64(config.heavy_jobs as u64)),
                ("max_inflight", Json::U64(seats as u64)),
            ]),
        ),
        (
            "cold",
            Json::obj([
                ("requests", Json::U64(specs.len() as u64)),
                ("sims_executed", Json::U64(cold_sims)),
                ("hits", Json::U64(cold_hits)),
                (
                    "latency",
                    latency_json(&LatencySummary::of(&cold_lat, cold_wall)),
                ),
            ]),
        ),
        (
            "warm",
            Json::obj([
                ("requests", Json::U64(config.warm_requests as u64)),
                ("hits", Json::U64(warm_hits)),
                ("sims_executed", Json::U64(warm_sims)),
                ("hit_rate", Json::f64(warm_hit_rate)),
                (
                    "latency",
                    latency_json(&LatencySummary::of(&warm_lat, warm_wall)),
                ),
            ]),
        ),
        (
            "coalesce",
            Json::obj([
                ("followers", Json::U64(config.followers as u64)),
                ("coalesced", Json::U64(coalesced)),
                ("sims_executed", Json::U64(coalesce_sims)),
            ]),
        ),
        (
            "overload",
            Json::obj([
                ("seats_filled", Json::U64(seats as u64)),
                ("overloads", Json::U64(overloads)),
            ]),
        ),
        (
            "server",
            Json::obj([("corrupt_entries", Json::U64(after_overload.corrupt_entries))]),
        ),
    ]))
}

/// Fields compared exactly by [`check_against`]: everything the phases
/// make deterministic by construction.
const EXACT_FIELDS: &[&str] = &[
    "cold.sims_executed",
    "cold.hits",
    "warm.hits",
    "warm.sims_executed",
    "warm.hit_rate",
    "coalesce.coalesced",
    "coalesce.sims_executed",
    "overload.overloads",
    "server.corrupt_entries",
];

fn field<'a>(doc: &'a Json, dotted: &str) -> Option<&'a Json> {
    dotted.split('.').try_fold(doc, |node, key| node.get(key))
}

/// Compares a fresh loadgen document against a committed baseline:
/// deterministic counters must match exactly; warm-phase QPS may regress
/// at most `tolerance` (fraction, e.g. `0.5` allows halving), and
/// warm-phase p99 may grow by at most the reciprocal factor.
///
/// # Errors
///
/// A newline-separated list of every violated field.
pub fn check_against(baseline: &Json, current: &Json, tolerance: f64) -> Result<(), String> {
    let mut failures = Vec::new();
    for dotted in EXACT_FIELDS {
        let base = field(baseline, dotted).and_then(Json::as_f64);
        let cur = field(current, dotted).and_then(Json::as_f64);
        match (base, cur) {
            (Some(b), Some(c)) => {
                if (b - c).abs() > 1e-9 {
                    failures.push(format!("{dotted}: baseline {b}, current {c}"));
                }
            }
            _ => failures.push(format!("{dotted}: missing in baseline or current")),
        }
    }
    let base_qps = field(baseline, "warm.latency.qps").and_then(Json::as_f64);
    let cur_qps = field(current, "warm.latency.qps").and_then(Json::as_f64);
    if let (Some(b), Some(c)) = (base_qps, cur_qps) {
        let floor = b * (1.0 - tolerance);
        if c < floor {
            failures.push(format!(
                "warm.latency.qps: {c:.1} below floor {floor:.1} (baseline {b:.1}, tolerance {tolerance})"
            ));
        }
    } else {
        failures.push("warm.latency.qps: missing in baseline or current".to_owned());
    }
    let base_p99 = field(baseline, "warm.latency.p99_ms").and_then(Json::as_f64);
    let cur_p99 = field(current, "warm.latency.p99_ms").and_then(Json::as_f64);
    if let (Some(b), Some(c)) = (base_p99, cur_p99) {
        let ceiling = if tolerance < 1.0 {
            b / (1.0 - tolerance)
        } else {
            f64::INFINITY
        };
        if c > ceiling {
            failures.push(format!(
                "warm.latency.p99_ms: {c:.2} above ceiling {ceiling:.2} (baseline {b:.2}, tolerance {tolerance})"
            ));
        }
    } else {
        failures.push("warm.latency.p99_ms: missing in baseline or current".to_owned());
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(qps: f64, p99: f64, coalesced: u64) -> Json {
        Json::obj([
            (
                "cold",
                Json::obj([("sims_executed", Json::U64(32)), ("hits", Json::U64(0))]),
            ),
            (
                "warm",
                Json::obj([
                    ("hits", Json::U64(256)),
                    ("sims_executed", Json::U64(0)),
                    ("hit_rate", Json::f64(1.0)),
                    (
                        "latency",
                        Json::obj([("qps", Json::f64(qps)), ("p99_ms", Json::f64(p99))]),
                    ),
                ]),
            ),
            (
                "coalesce",
                Json::obj([
                    ("coalesced", Json::U64(coalesced)),
                    ("sims_executed", Json::U64(1)),
                ]),
            ),
            ("overload", Json::obj([("overloads", Json::U64(1))])),
            ("server", Json::obj([("corrupt_entries", Json::U64(0))])),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(500.0, 10.0, 8);
        assert!(check_against(&base, &doc(500.0, 10.0, 8), 0.5).is_ok());
    }

    #[test]
    fn qps_regression_within_tolerance_passes() {
        let base = doc(500.0, 10.0, 8);
        assert!(check_against(&base, &doc(300.0, 15.0, 8), 0.5).is_ok());
    }

    #[test]
    fn qps_regression_past_tolerance_fails() {
        let base = doc(500.0, 10.0, 8);
        let err = check_against(&base, &doc(100.0, 10.0, 8), 0.5).unwrap_err();
        assert!(err.contains("warm.latency.qps"), "{err}");
    }

    #[test]
    fn deterministic_counter_drift_fails_exactly() {
        let base = doc(500.0, 10.0, 8);
        let err = check_against(&base, &doc(500.0, 10.0, 7), 0.5).unwrap_err();
        assert!(err.contains("coalesce.coalesced"), "{err}");
    }

    #[test]
    fn heavy_scenarios_differ_by_variant_only() {
        let a = heavy_scenario(0, 50);
        let b = heavy_scenario(1, 50);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.jobs, b.jobs);
        // Both must be valid, runnable specs.
        a.to_sim().unwrap();
        let rendered = b.render();
        assert_eq!(CheckScenario::parse(&rendered).unwrap(), b);
    }
}
