//! # vr-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§3–§4).
//! Each `src/bin/*` binary prints one artifact; the `experiments` binary
//! runs everything and emits the markdown that backs `EXPERIMENTS.md`.
//!
//! | Binary        | Paper artifact |
//! |---------------|----------------|
//! | `table1`      | Table 1 — SPEC 2000 program characteristics |
//! | `table2`      | Table 2 — application program characteristics |
//! | `fig1`        | Figure 1 — group 1 total execution & queuing times |
//! | `fig2`        | Figure 2 — group 1 slowdowns & idle memory volumes |
//! | `fig3`        | Figure 3 — group 2 total execution & queuing times |
//! | `fig4`        | Figure 4 — group 2 slowdowns & job balance skews |
//! | `model_check` | §5 — analytical model verified against measurements |
//! | `ablation`    | §2.2/§2.3 — negative conditions & design ablations |
//! | `experiments` | everything above, as markdown |
//!
//! Beyond the paper's evaluation, `engine_bench` replays the five trace
//! levels end-to-end into the gated `BENCH_engine.json` baseline, and
//! `scale_bench` measures a nodes × jobs grid (up to 10,000 nodes /
//! 1,000,000 jobs) into the gated `BENCH_scale.json` baseline.
//!
//! The Criterion benches under `benches/` quantify the overhead claims
//! ("the adaptive process causes little additional overhead").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod paper;
pub mod render;

use std::path::PathBuf;
use std::sync::Arc;

use vr_cluster::params::ClusterParams;
use vr_metrics::comparison::MetricComparison;
use vr_runner::{ResultCache, Runner, Scenario, ScenarioResult, SweepOptions, SweepPlan};
use vr_simcore::rng::SimRng;
use vr_workload::trace::{app_trace, spec_trace, Trace, TraceLevel};
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::report::RunReport;
use vrecon::sim::Simulation;

/// Seed used to regenerate the workload traces (fixed so every binary sees
/// the same ten traces).
pub const TRACE_SEED: u64 = 42;

/// Seed used for scheduling randomness inside the simulator.
pub const SIM_SEED: u64 = 7;

/// The two workload groups of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Workload group 1: SPEC 2000 on cluster 1 (384 MB nodes).
    Spec,
    /// Workload group 2: scientific applications on cluster 2 (128 MB
    /// nodes).
    App,
}

impl Group {
    /// The cluster this group runs on.
    pub fn cluster(self) -> ClusterParams {
        match self {
            Group::Spec => ClusterParams::cluster1(),
            Group::App => ClusterParams::cluster2(),
        }
    }

    /// Regenerates this group's trace at `level`.
    pub fn trace(self, level: TraceLevel) -> Trace {
        let mut rng = SimRng::seed_from(TRACE_SEED);
        match self {
            Group::Spec => spec_trace(level, &mut rng),
            Group::App => app_trace(level, &mut rng),
        }
    }
}

/// A G-Loadsharing / V-Reconfiguration pair of runs over one trace.
#[derive(Debug)]
pub struct PolicyPair {
    /// The trace both policies executed.
    pub trace_name: String,
    /// Baseline run.
    pub gls: RunReport,
    /// Virtual-reconfiguration run.
    pub vr: RunReport,
}

impl PolicyPair {
    /// Comparison of total execution times.
    pub fn execution_time(&self) -> MetricComparison {
        MetricComparison::new(
            self.gls.total_execution_secs(),
            self.vr.total_execution_secs(),
        )
    }

    /// Comparison of total queuing times.
    pub fn queue_time(&self) -> MetricComparison {
        MetricComparison::new(self.gls.total_queue_secs(), self.vr.total_queue_secs())
    }

    /// Comparison of average slowdowns.
    pub fn slowdown(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_slowdown(), self.vr.avg_slowdown())
    }

    /// Comparison of average idle memory volumes (MB, virtual cluster).
    pub fn idle_memory(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_idle_memory_mb(), self.vr.avg_idle_memory_mb())
    }

    /// Comparison of average job balance skews.
    pub fn balance_skew(&self) -> MetricComparison {
        MetricComparison::new(self.gls.avg_balance_skew(), self.vr.avg_balance_skew())
    }
}

/// Runs one trace under a single policy with the harness defaults.
pub fn run_policy(group: Group, trace: &Trace, policy: PolicyKind) -> RunReport {
    let config = SimConfig::new(group.cluster(), policy).with_seed(SIM_SEED);
    Simulation::new(config).run(trace)
}

/// The G-Loadsharing / V-Reconfiguration sweep plan for one arrival level:
/// two scenarios sharing the regenerated trace.
pub fn pair_plan(group: Group, level: TraceLevel) -> SweepPlan {
    let trace = Arc::new(group.trace(level));
    [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration]
        .into_iter()
        .map(|policy| {
            Scenario::new(
                SimConfig::new(group.cluster(), policy).with_seed(SIM_SEED),
                Arc::clone(&trace),
            )
        })
        .collect()
}

/// The full sweep plan of one workload group: five arrival levels × two
/// policies, level-major, G-Loadsharing before V-Reconfiguration.
pub fn group_plan(group: Group) -> SweepPlan {
    TraceLevel::ALL
        .into_iter()
        .flat_map(|level| pair_plan(group, level).scenarios)
        .collect()
}

/// Reassembles the results of a plan built by [`pair_plan`]/[`group_plan`]
/// (or any concatenation of them) into policy pairs.
///
/// # Panics
///
/// Panics if a scenario failed or the result count is odd.
pub fn pairs_from_results(results: Vec<Option<ScenarioResult>>) -> Vec<PolicyPair> {
    let mut reports: Vec<RunReport> = results
        .into_iter()
        // vr-lint::allow(panic-in-lib, reason = "bench harness treats a failed sweep scenario as fatal; the panic carries the scenario error")
        .map(|slot| slot.expect("sweep scenario failed").report)
        .collect();
    assert!(
        reports.len().is_multiple_of(2),
        "policy-pair sweeps have an even scenario count"
    );
    let mut pairs = Vec::with_capacity(reports.len() / 2);
    while !reports.is_empty() {
        let gls = reports.remove(0);
        let vr = reports.remove(0);
        assert_eq!(gls.policy, PolicyKind::GLoadSharing);
        assert_eq!(vr.policy, PolicyKind::VReconfiguration);
        pairs.push(PolicyPair {
            trace_name: gls.trace_name.clone(),
            gls,
            vr,
        });
    }
    pairs
}

/// Runs one trace under both policies on `runner`.
pub fn run_pair_on(runner: &Runner, group: Group, level: TraceLevel) -> PolicyPair {
    let outcome = runner.run(&pair_plan(group, level));
    pairs_from_results(outcome.results)
        .pop()
        // vr-lint::allow(panic-in-lib, reason = "pair_plan always yields exactly one pair; a miss is a harness bug worth aborting on")
        .expect("pair plan yields one pair")
}

/// Runs all five arrival levels of a group on `runner`.
pub fn run_group_on(runner: &Runner, group: Group) -> Vec<PolicyPair> {
    pairs_from_results(runner.run(&group_plan(group)).results)
}

/// Runs one trace under both policies (parallel, uncached).
pub fn run_pair(group: Group, level: TraceLevel) -> PolicyPair {
    run_pair_on(&Runner::uncached(0), group, level)
}

/// Runs all five arrival levels of a group (parallel, uncached).
pub fn run_group(group: Group) -> Vec<PolicyPair> {
    run_group_on(&Runner::uncached(0), group)
}

/// Common options every bench binary accepts on its command line:
/// `--jobs N` (0 = auto) and `--no-cache`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchArgs {
    /// Worker threads for the sweep pool (0 = available parallelism).
    pub jobs: usize,
    /// Disable the content-addressed result cache.
    pub no_cache: bool,
}

impl BenchArgs {
    /// Parses the process arguments, exiting with usage on anything
    /// unrecognised (bench binaries have no other options).
    pub fn from_env() -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => out.jobs = n,
                    None => die("--jobs requires an integer value"),
                },
                "--no-cache" => out.no_cache = true,
                other => die(&format!(
                    "unknown argument {other}; supported: --jobs N, --no-cache"
                )),
            }
        }
        out
    }

    /// Builds the sweep runner these options describe. `progress` enables
    /// live per-scenario telemetry lines on stderr.
    pub fn runner(&self, progress: bool) -> Runner {
        let cache = if self.no_cache {
            ResultCache::disabled()
        } else {
            ResultCache::at(vr_runner::default_cache_dir())
        };
        Runner::new(SweepOptions {
            jobs: self.jobs,
            cache,
            progress,
        })
    }
}

/// Prints a loud stderr warning for every horizon-truncated result in a
/// sweep (`run_stats.drained == false`: the run hit `max_sim_time` with
/// events still queued, so its measurements are truncated, not converged).
/// Returns the number of truncated runs so callers can flag the artifact.
pub fn warn_truncated<'a, I: IntoIterator<Item = &'a ScenarioResult>>(results: I) -> usize {
    let mut truncated = 0;
    for result in results {
        if !result.report.run_stats.drained {
            truncated += 1;
            eprintln!(
                "WARNING: horizon-truncated run [{}]: stopped at max-sim-time ({:.0}s) with \
                 events still queued after {} events — measurements are truncated, not converged",
                result.label,
                result.report.run_stats.final_time.as_secs_f64(),
                result.report.run_stats.events_processed,
            );
        }
    }
    truncated
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Resolves `VR_RESULTS_DIR`, creating it. `Ok(None)` when unset.
///
/// # Errors
///
/// Returns an error if the directory cannot be created — bench binaries
/// treat that as fatal rather than silently producing no CSVs.
pub fn results_dir() -> Result<Option<PathBuf>, String> {
    let Some(dir) = std::env::var_os("VR_RESULTS_DIR") else {
        return Ok(None);
    };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create VR_RESULTS_DIR {}: {e}", dir.display()))?;
    Ok(Some(dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_stable_across_calls() {
        let a = Group::Spec.trace(TraceLevel::Light);
        let b = Group::Spec.trace(TraceLevel::Light);
        assert_eq!(a, b);
        assert_eq!(a.len(), 359);
    }

    #[test]
    fn groups_map_to_their_clusters() {
        assert_eq!(
            Group::Spec.cluster().nodes[0].memory.user,
            vr_cluster::units::Bytes::from_mb(384)
        );
        assert_eq!(
            Group::App.cluster().nodes[0].memory.user,
            vr_cluster::units::Bytes::from_mb(128)
        );
    }
}
