pub fn drain(queue: &Mutex<Vec<u64>>, jobs: &Receiver<u64>) {
    let guard = queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _next = jobs.recv();
    drop(guard);
}

pub fn drain_fixed(queue: &Mutex<Vec<u64>>, jobs: &Receiver<u64>) {
    {
        let _guard = queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let _next = jobs.recv();
}
