//! The interconnect cost model.
//!
//! The paper's clusters use 10 Mbps Ethernet. A remote submission costs a
//! fixed `r = 0.1 s`; a preemptive migration transfers the job's entire
//! working-set image, costing `r + D/B` where `D` is the image size in bits
//! and `B` the bandwidth (§3.3.1).

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimSpan;

use crate::units::Bytes;

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Fixed remote submission / remote execution setup cost (`r`).
    pub remote_submit_cost: SimSpan,
}

impl NetworkParams {
    /// The paper's configuration: 10 Mbps Ethernet, `r = 0.1 s`.
    pub fn ethernet_10mbps() -> Self {
        NetworkParams {
            bandwidth_bps: 10e6,
            remote_submit_cost: SimSpan::from_millis(100),
        }
    }

    /// A modern faster interconnect for the "migration time becomes less
    /// crucial" sensitivity study (§5, model point 4).
    pub fn ethernet_1gbps() -> Self {
        NetworkParams {
            bandwidth_bps: 1e9,
            remote_submit_cost: SimSpan::from_millis(10),
        }
    }

    /// Cost of preemptively migrating a job whose resident image is
    /// `image` bytes: `r + D/B`.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn migration_cost(&self, image: Bytes) -> SimSpan {
        assert!(
            self.bandwidth_bps > 0.0,
            "network bandwidth must be positive"
        );
        let transfer = image.as_bits() as f64 / self.bandwidth_bps;
        self.remote_submit_cost + SimSpan::from_secs_f64(transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let net = NetworkParams::ethernet_10mbps();
        assert_eq!(net.bandwidth_bps, 10e6);
        assert_eq!(net.remote_submit_cost, SimSpan::from_millis(100));
    }

    #[test]
    fn migration_cost_is_r_plus_transfer() {
        let net = NetworkParams::ethernet_10mbps();
        // 10 MB image = 80e6 bits over 10e6 bps = 8 s, plus r = 0.1 s.
        let cost = net.migration_cost(Bytes::from_mb_f64(10e6 / 1024.0 / 1024.0 * 1.0));
        // Use an exact 10^7-byte image for clean math.
        let cost_exact = net.migration_cost(Bytes::new(10_000_000));
        assert!((cost_exact.as_secs_f64() - 8.1).abs() < 1e-9);
        assert!(cost.as_secs_f64() > 8.0);
    }

    #[test]
    fn zero_image_costs_only_r() {
        let net = NetworkParams::ethernet_10mbps();
        assert_eq!(net.migration_cost(Bytes::ZERO), SimSpan::from_millis(100));
    }

    #[test]
    fn faster_network_migrates_cheaper() {
        let image = Bytes::from_mb(50);
        let slow = NetworkParams::ethernet_10mbps().migration_cost(image);
        let fast = NetworkParams::ethernet_1gbps().migration_cost(image);
        assert!(fast < slow);
        assert!(slow.as_secs_f64() > 40.0); // 50MB over 10Mbps ≈ 42s
        assert!(fast.as_secs_f64() < 1.0);
    }
}
