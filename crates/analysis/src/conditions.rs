//! Predicates for when virtual reconfiguration helps — and when it cannot.
//!
//! §5 lists three conditions under which "virtual reconfiguration can be
//! potentially unsuccessful":
//!
//! 1. the cluster is lightly loaded (dynamic load sharing alone suffices);
//! 2. the majority of jobs are equally sized in their memory demands
//!    (unsuitable placements become unlikely);
//! 3. the migrated job is larger than the reserved workstation's user space
//!    (its faults merely move).
//!
//! §2.3 adds the precondition that the *accumulated* idle memory must exceed
//! the user space of a single workstation for a reservation to be worth
//! making.

use serde::{Deserialize, Serialize};
use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_workload::trace::Trace;

/// Assessment of a workload/cluster pairing for virtual reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Applicability {
    /// Offered CPU load: total dedicated CPU work over cluster capacity for
    /// the submission window.
    pub offered_load: f64,
    /// Coefficient of variation of peak working sets (σ/μ). Low values mean
    /// "equally sized memory demands" (§5 condition 2).
    pub memory_demand_cv: f64,
    /// Fraction of jobs whose peak demand exceeds half a workstation's user
    /// memory — the candidates that can block nodes.
    pub large_job_fraction: f64,
    /// `true` if some job's peak demand exceeds the largest workstation's
    /// user memory (§5 condition 3 / §2.3 network-RAM caveat).
    pub oversized_jobs: bool,
}

/// Below this offered load the cluster counts as lightly loaded (§5
/// condition 1).
pub const LIGHT_LOAD_THRESHOLD: f64 = 0.35;

/// Below this coefficient of variation, memory demands count as equally
/// sized (§5 condition 2).
pub const EQUAL_DEMAND_CV_THRESHOLD: f64 = 0.15;

impl Applicability {
    /// Assesses `trace` against `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn assess(trace: &Trace, cluster: &ClusterParams) -> Applicability {
        assert!(!trace.is_empty(), "cannot assess an empty trace");
        let window = trace.last_submission().as_secs_f64().max(1.0);
        let offered_load = trace.total_cpu_work_secs() / (cluster.size() as f64 * window);
        let demands: Vec<f64> = trace
            .jobs
            .iter()
            .map(|j| j.max_working_set().as_mb_f64())
            .collect();
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        let var = demands.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / demands.len() as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        let avg_user = cluster.average_user_memory();
        let half_node = avg_user.mul_f64(0.5);
        let large = trace
            .jobs
            .iter()
            .filter(|j| j.max_working_set() > half_node)
            .count();
        let max_user = cluster
            .nodes
            .iter()
            .map(|n| n.memory.user)
            .max()
            .unwrap_or(Bytes::ZERO);
        let oversized = trace.jobs.iter().any(|j| j.max_working_set() > max_user);
        Applicability {
            offered_load,
            memory_demand_cv: cv,
            large_job_fraction: large as f64 / trace.len() as f64,
            oversized_jobs: oversized,
        }
    }

    /// §5 condition 1: the cluster is lightly loaded.
    pub fn is_lightly_loaded(&self) -> bool {
        self.offered_load < LIGHT_LOAD_THRESHOLD
    }

    /// §5 condition 2: memory demands are (nearly) equally sized.
    pub fn has_equal_memory_demands(&self) -> bool {
        self.memory_demand_cv < EQUAL_DEMAND_CV_THRESHOLD
    }

    /// §2.2 point 4: big jobs dominate, so reserving would starve normal
    /// jobs (reservation caps must bind).
    pub fn big_jobs_dominant(&self) -> bool {
        self.large_job_fraction > 0.5
    }

    /// Overall §5 expectation: reconfiguration should pay off.
    pub fn expects_gain(&self) -> bool {
        !self.is_lightly_loaded()
            && !self.has_equal_memory_demands()
            && !self.big_jobs_dominant()
            && self.large_job_fraction > 0.0
    }
}

/// §2.1's activation precondition: the accumulated idle memory must exceed
/// the average user memory of a workstation.
pub fn reservation_precondition(accumulated_idle: Bytes, average_user: Bytes) -> bool {
    accumulated_idle > average_user
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_simcore::rng::SimRng;
    use vr_workload::synth;
    use vr_workload::trace::{app_trace, spec_trace, TraceLevel};

    #[test]
    fn spec_traces_expect_gain() {
        let trace = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(1));
        let a = Applicability::assess(&trace, &ClusterParams::cluster1());
        assert!(!a.is_lightly_loaded(), "offered load {}", a.offered_load);
        assert!(!a.has_equal_memory_demands(), "cv {}", a.memory_demand_cv);
        assert!(!a.oversized_jobs);
        assert!(a.expects_gain(), "{a:?}");
    }

    #[test]
    fn app_traces_expect_gain_with_moderate_large_fraction() {
        let app = Applicability::assess(
            &app_trace(TraceLevel::Normal, &mut SimRng::seed_from(1)),
            &ClusterParams::cluster2(),
        );
        assert!(app.expects_gain(), "{app:?}");
        // Roughly 3 of 7 group-2 programs exceed half a 128 MB node.
        assert!(
            (0.2..0.5).contains(&app.large_job_fraction),
            "large fraction {}",
            app.large_job_fraction
        );
    }

    #[test]
    fn equal_memory_workload_is_recognized() {
        let trace = synth::equal_memory(100, Bytes::from_mb(64), &mut SimRng::seed_from(2));
        let a = Applicability::assess(&trace, &ClusterParams::cluster2());
        assert!(a.has_equal_memory_demands(), "cv {}", a.memory_demand_cv);
        assert!(!a.expects_gain());
    }

    #[test]
    fn light_load_is_recognized() {
        let trace = synth::light_load(20, &mut SimRng::seed_from(3));
        let a = Applicability::assess(&trace, &ClusterParams::cluster2());
        assert!(a.is_lightly_loaded(), "offered load {}", a.offered_load);
        assert!(!a.expects_gain());
    }

    #[test]
    fn big_dominant_workload_is_recognized() {
        let trace =
            synth::big_job_dominant(200, Bytes::from_mb(128), 0.8, &mut SimRng::seed_from(4));
        let a = Applicability::assess(&trace, &ClusterParams::cluster2());
        assert!(a.big_jobs_dominant(), "{a:?}");
        assert!(!a.expects_gain());
    }

    #[test]
    fn precondition_matches_paper_rule() {
        assert!(reservation_precondition(
            Bytes::from_mb(400),
            Bytes::from_mb(384)
        ));
        assert!(!reservation_precondition(
            Bytes::from_mb(300),
            Bytes::from_mb(384)
        ));
    }
}
