//! The numbers the paper reports, for side-by-side comparison.
//!
//! §4 quotes every reduction percentage in prose; the figures themselves are
//! unreadable in the source text, so the quoted reductions are the
//! comparison target. `None` marks points the paper only describes
//! qualitatively ("the reductions to other three traces are modest").

/// Paper-reported reduction (%) for one trace level, if quoted.
pub type Quoted = Option<f64>;

/// Figure 1 left: group 1 total execution time reductions.
pub const FIG1_EXEC: [Quoted; 5] = [Some(29.3), Some(32.4), Some(32.4), Some(30.3), Some(27.4)];

/// Figure 1 right: group 1 total queuing time reductions.
pub const FIG1_QUEUE: [Quoted; 5] = [Some(24.8), Some(35.8), Some(36.7), Some(34.0), Some(38.2)];

/// Figure 2 left: group 1 average slowdown reductions.
pub const FIG2_SLOWDOWN: [Quoted; 5] =
    [Some(23.4), Some(27.7), Some(22.6), Some(24.6), Some(28.46)];

/// Figure 2 right: group 1 average idle memory volume reductions.
pub const FIG2_IDLE: [Quoted; 5] = [Some(12.9), Some(24.2), Some(29.7), Some(40.9), Some(50.8)];

/// Figure 3 left: group 2 total execution time reductions ("the reductions
/// to other three traces are modest").
pub const FIG3_EXEC: [Quoted; 5] = [None, Some(13.4), Some(14.0), None, None];

/// Figure 3 right: group 2 total queuing time reductions.
pub const FIG3_QUEUE: [Quoted; 5] = [None, Some(16.3), Some(16.8), None, None];

/// Figure 4 left: group 2 average slowdown reductions.
pub const FIG4_SLOWDOWN: [Quoted; 5] = [None, Some(16.3), Some(16.8), Some(6.8), None];

/// Figure 4 right: group 2 average job balance skew reductions.
pub const FIG4_SKEW: [Quoted; 5] = [None, Some(10.3), Some(16.5), Some(6.3), None];

/// Renders a quoted value for a table cell.
pub fn quoted_cell(q: Quoted) -> String {
    match q {
        Some(v) => format!("{v:.1}%"),
        None => "(modest)".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_series_have_five_levels() {
        for series in [
            FIG1_EXEC,
            FIG1_QUEUE,
            FIG2_SLOWDOWN,
            FIG2_IDLE,
            FIG3_EXEC,
            FIG3_QUEUE,
            FIG4_SLOWDOWN,
            FIG4_SKEW,
        ] {
            assert_eq!(series.len(), 5);
        }
    }

    #[test]
    fn group1_is_fully_quoted() {
        assert!(FIG1_EXEC.iter().all(Option::is_some));
        assert!(FIG2_IDLE.iter().all(Option::is_some));
    }

    #[test]
    fn cells_render() {
        assert_eq!(quoted_cell(Some(29.3)), "29.3%");
        assert_eq!(quoted_cell(None), "(modest)");
    }
}
