//! # vr-workload — workload substrate
//!
//! Reconstructs the paper's trace-driven workloads (§3.2–§3.3.2): the two
//! program groups of Tables 1–2, the lognormal arrival-rate generator, the
//! ten named traces (`SPEC-Trace-1..5`, `App-Trace-1..5`), synthetic
//! adversarial workloads, and a plain-text trace interchange format.
//!
//! * [`activity`] — the paper's per-10 ms activity records (§3.1/§3.3.2)
//!   with record/replay round-tripping.
//! * [`catalog`] — [`ProgramSpec`] with phase-shaped
//!   memory profiles and jittered instantiation.
//! * [`spec2000`] — workload group 1 (Table 1 reconstruction).
//! * [`apps`] — workload group 2 (Table 2 reconstruction).
//! * [`arrival`] — the paper's lognormal rate function and a Poisson
//!   process.
//! * [`trace`] — [`TraceLevel`] and trace builders.
//! * [`synth`] — adversarial workloads for §2.3 / §5 negative conditions.
//! * [`scale`] — N-node / M-job scale-out scenarios preserving the paper's
//!   arrival and working-set marginals.
//! * [`csv`] — trace round-tripping without a serde format crate.
//!
//! ```
//! use vr_simcore::rng::SimRng;
//! use vr_workload::trace::{spec_trace, TraceLevel};
//!
//! let trace = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(42));
//! assert_eq!(trace.len(), 578); // the paper's SPEC-Trace-3 job count
//! trace.validate()?;
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod apps;
pub mod arrival;
pub mod catalog;
pub mod csv;
pub mod scale;
pub mod spec2000;
pub mod synth;
pub mod trace;

pub use activity::{ActivityRecord, ActivitySample, PAPER_INTERVAL};
pub use arrival::{BurstyArrivals, DiurnalArrivals, LognormalArrivals, PoissonArrivals};
pub use catalog::{PhaseShape, ProgramSpec};
pub use csv::{read_activity, read_trace, write_activity, write_trace, ReadTraceError};
pub use scale::ScaleSpec;
pub use trace::{app_trace, spec_trace, Trace, TraceLevel, DEFAULT_JITTER};
