//! The `vr-lint` binary: lints the workspace (default) or explicit files.
//!
//! ```sh
//! vr-lint --workspace --format json       # what CI runs
//! vr-lint crates/core/src/sim.rs          # one file, context from path
//! vr-lint fixture.rs --assume-crate core --assume-role lib
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use vr_lint::{classify, find_workspace_root, lint_source, lint_workspace};
use vr_lint::{FileContext, LintReport, Role, RULES};

const USAGE: &str = "\
vr-lint — determinism & panic-safety analyzer for the vrecon workspace

USAGE:
  vr-lint [--workspace] [--root DIR] [--format text|json]
  vr-lint PATHS... [--format text|json] [--assume-crate NAME] [--assume-role lib|bin|test|example]

With no PATHS the whole workspace is linted (the root is found by walking
up from the current directory to a Cargo.toml with [workspace], or taken
from --root). Explicit PATHS are linted with their crate/role inferred
from the path unless --assume-crate / --assume-role override it.

RULES:
";

fn usage() -> String {
    let mut out = USAGE.to_owned();
    for rule in RULES {
        out.push_str(&format!("  {:28} {}\n", rule.name, rule.summary));
    }
    out
}

struct Options {
    root: Option<PathBuf>,
    paths: Vec<String>,
    json: bool,
    assume_crate: Option<String>,
    assume_role: Option<Role>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        paths: Vec::new(),
        json: false,
        assume_crate: None,
        assume_role: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                let v = iter.next().ok_or("--root requires a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match iter.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format must be text|json, got {other:?}")),
            },
            "--assume-crate" => {
                let v = iter.next().ok_or("--assume-crate requires a value")?;
                opts.assume_crate = Some(v.clone());
            }
            "--assume-role" => {
                opts.assume_role = Some(match iter.next().map(String::as_str) {
                    Some("lib") => Role::Lib,
                    Some("bin") => Role::Bin,
                    Some("test") => Role::Test,
                    Some("example") => Role::Example,
                    other => {
                        return Err(format!(
                            "--assume-role must be lib|bin|test|example, got {other:?}"
                        ))
                    }
                });
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => opts.paths.push(path.to_owned()),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<LintReport, String> {
    if opts.paths.is_empty() {
        let root = match &opts.root {
            Some(r) => r.clone(),
            None => {
                let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
                find_workspace_root(&cwd)
                    .ok_or("no [workspace] Cargo.toml above the current directory; use --root")?
            }
        };
        return lint_workspace(&root);
    }
    let mut report = LintReport::default();
    for path in &opts.paths {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let inferred = classify(path);
        let ctx = FileContext {
            krate: opts.assume_crate.clone().unwrap_or(inferred.krate),
            role: opts.assume_role.unwrap_or(inferred.role),
        };
        let outcome = lint_source(path, &src, &ctx);
        report.diagnostics.extend(outcome.diagnostics);
        report.allows += outcome.allows;
        report.stale_allows += outcome.stale_allows;
        report.files_scanned += 1;
    }
    report.diagnostics.sort_by_key(|d| d.sort_key());
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            if opts.json {
                println!("{}", report.render_json());
            } else {
                println!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
