//! The `vr-analyze` binary: semantic analysis over the whole workspace.
//!
//! ```sh
//! vr-analyze --workspace                         # what CI runs
//! vr-analyze --workspace --format json
//! vr-analyze --workspace --sarif-out analyze.sarif
//! ```
//!
//! Unlike `vr-lint`, there is no single-file mode: the taint and
//! lock-order rules are whole-program by nature (a finding in one file
//! can be caused by a call three crates away), so the unit of analysis
//! is always the workspace.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use vr_lint::{analyze_workspace, find_workspace_root, ANALYZE_RULES};

const USAGE: &str = "\
vr-analyze — cross-crate semantic analysis for the vrecon workspace
(taint tracking for determinism boundaries; lock-order, blocking and
Condvar discipline over the pool/serve layer)

USAGE:
  vr-analyze [--workspace] [--root DIR] [--format text|json|sarif] [--sarif-out FILE]

The workspace root is found by walking up from the current directory to
a Cargo.toml with [workspace], or taken from --root. --sarif-out writes
a SARIF 2.1.0 report to FILE in addition to the chosen --format on
stdout.

RULES:
";

fn usage() -> String {
    let mut out = USAGE.to_owned();
    for (name, summary) in ANALYZE_RULES {
        out.push_str(&format!("  {name:24} {summary}\n"));
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: Option<PathBuf>,
    format: Format,
    sarif_out: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        format: Format::Text,
        sarif_out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                let v = iter.next().ok_or("--root requires a value")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => {
                opts.format = match iter.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!("--format must be text|json|sarif, got {other:?}"))
                    }
                }
            }
            "--sarif-out" => {
                let v = iter.next().ok_or("--sarif-out requires a value")?;
                opts.sarif_out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("error: cannot read cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "error: no [workspace] Cargo.toml above the current directory; use --root"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match analyze_workspace(&root) {
        Ok(report) => {
            if let Some(path) = &opts.sarif_out {
                if let Err(e) = std::fs::write(path, report.render_sarif()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            match opts.format {
                Format::Text => println!("{}", report.render_text()),
                Format::Json => println!("{}", report.render_json()),
                Format::Sarif => println!("{}", report.render_sarif()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
