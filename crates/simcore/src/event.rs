//! Deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue ordered by `(time, insertion sequence)`.
//! The sequence tie-break makes event ordering — and therefore every
//! simulation built on it — fully deterministic: two events scheduled for the
//! same instant fire in the order they were scheduled.
//!
//! # Calendar layout
//!
//! The backing store is a calendar queue tuned to the simulator's
//! short-horizon event mix (periodic exchange/sample ticks about one second
//! apart, plus job arrivals spread over hours): time is divided into
//! ~1-second slots, each slot hashing onto one of [`BUCKETS`] bucket deques
//! kept sorted by `(time, seq)`. Scheduling is an O(1) append for the
//! common monotone case (a binary-searched insert otherwise), and popping
//! advances a slot cursor, so both ends of the queue cost O(1) amortized
//! instead of the O(log n) of a binary heap — and no hashing or heap
//! sifting happens per event.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] marks the entry dead and the
//! queue skips it on pop, so cancelling is O(1) and popping stays O(1)
//! amortized. When dead entries outnumber half the live ones the queue
//! compacts, dropping them from every bucket, so cancel-heavy workloads
//! cannot grow the physical store without bound.
//!
//! ```
//! use vr_simcore::event::EventQueue;
//! use vr_simcore::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! let a = q.schedule(SimTime::from_secs(2), "second");
//! q.schedule(SimTime::from_secs(1), "first");
//! q.schedule(SimTime::from_secs(2), "third (same time, later seq)");
//! assert!(q.cancel(a));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("third (same time, later seq)"));
//! assert!(q.pop().is_none());
//! ```

use std::collections::VecDeque;

use crate::time::SimTime;

/// Number of calendar buckets (power of two so the slot hash is a mask).
const BUCKETS: usize = 1024;
/// Slot width as a power-of-two microsecond shift: 2^20 µs ≈ 1.05 s, on
/// the order of the simulator's periodic tick spacing.
const SLOT_SHIFT: u32 = 20;

/// Entry lifecycle, indexed by sequence number in `EventQueue::states`.
const STATE_PENDING: u8 = 0;
const STATE_CANCELLED: u8 = 1;
const STATE_GONE: u8 = 2;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are unique for the lifetime of the queue and become inert once the
/// event has fired or been cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// A deterministic time-ordered queue of pending simulation events.
///
/// See the [module documentation](self) for ordering and cancellation
/// semantics.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `BUCKETS` deques, each sorted ascending by `(time, seq)`. A slot's
    /// entries all land in bucket `slot % BUCKETS`; colliding slots share a
    /// bucket but the sort keeps earlier slots in front.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Lifecycle per sequence number ever issued (1 byte per event).
    states: Vec<u8>,
    /// Lower bound on the slot of the earliest live entry.
    cursor_slot: u64,
    /// Entries scheduled but neither fired nor cancelled.
    live: usize,
    /// Cancelled entries still physically present in a bucket.
    dead: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, VecDeque::new);
        EventQueue {
            buckets,
            states: Vec::new(),
            cursor_slot: 0,
            live: 0,
            dead: 0,
            next_seq: 0,
        }
    }

    fn slot_of(time: SimTime) -> u64 {
        time.as_micros() >> SLOT_SHIFT
    }

    /// Schedules `event` to fire at `time` and returns a handle that can
    /// cancel it.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.states.push(STATE_PENDING);
        let slot = Self::slot_of(time);
        if self.live == 0 || slot < self.cursor_slot {
            self.cursor_slot = slot;
        }
        self.live += 1;
        let bucket = &mut self.buckets[(slot as usize) & (BUCKETS - 1)];
        // New entries carry the largest seq yet, so whenever `time` is not
        // earlier than the bucket tail the append keeps the sort — the
        // overwhelmingly common case for monotone schedules.
        if bucket.back().is_none_or(|e| e.time <= time) {
            bucket.push_back(Entry { time, seq, event });
        } else {
            let at = bucket.partition_point(|e| e.time <= time);
            bucket.insert(at, Entry { time, seq, event });
        }
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.states.get_mut(handle.0 as usize) {
            Some(state) if *state == STATE_PENDING => {
                *state = STATE_CANCELLED;
                self.live -= 1;
                self.dead += 1;
                self.maybe_compact();
                true
            }
            _ => false,
        }
    }

    /// Drops cancelled entries from every bucket once they outnumber half
    /// the live ones.
    ///
    /// The O(n) sweep is amortized: after a compaction the dead count is
    /// zero, and since `2 · dead > live` gates the sweep its cost is at
    /// most ~3× the number of cancels performed since the previous one.
    fn maybe_compact(&mut self) {
        if self.dead * 2 <= self.live {
            return;
        }
        for bucket in &mut self.buckets {
            bucket.retain(|e| {
                let keep = self.states[e.seq as usize] == STATE_PENDING;
                if !keep {
                    self.states[e.seq as usize] = STATE_GONE;
                }
                keep
            });
        }
        self.dead = 0;
    }

    /// Strips cancelled entries off the head of `bucket`, returning `true`
    /// if a live head remains.
    fn strip_cancelled_head(&mut self, bucket: usize) -> bool {
        while let Some(head) = self.buckets[bucket].front() {
            if self.states[head.seq as usize] == STATE_PENDING {
                return true;
            }
            let seq = self.buckets[bucket]
                .pop_front()
                .map(|e| e.seq)
                .unwrap_or_default();
            self.states[seq as usize] = STATE_GONE;
            self.dead -= 1;
        }
        false
    }

    /// Advances the slot cursor to the earliest live entry and returns its
    /// bucket index. `None` when no live entries remain.
    ///
    /// Scans slot-by-slot from the cursor (each step is one bucket-head
    /// check); if [`BUCKETS`] consecutive slots are empty the next event is
    /// at least one full calendar rotation away, so it falls back to one
    /// direct min-scan over the bucket heads and jumps the cursor there.
    fn find_min_bucket(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        for step in 0..BUCKETS as u64 {
            let slot = self.cursor_slot + step;
            let bucket = (slot as usize) & (BUCKETS - 1);
            if self.strip_cancelled_head(bucket)
                && Self::slot_of(self.buckets[bucket][0].time) == slot
            {
                self.cursor_slot = slot;
                return Some(bucket);
            }
        }
        // Sparse region: locate the global minimum directly. Bucket heads
        // are per-bucket minima, so the least (time, seq) among them is the
        // queue minimum.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for bucket in 0..BUCKETS {
            if !self.strip_cancelled_head(bucket) {
                continue;
            }
            let head = &self.buckets[bucket][0];
            let key = (head.time, head.seq);
            if best.is_none_or(|(t, s, _)| key < (t, s)) {
                best = Some((head.time, head.seq, bucket));
            }
        }
        let (time, _, bucket) = best?;
        self.cursor_slot = Self::slot_of(time);
        Some(bucket)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let bucket = self.find_min_bucket()?;
        let entry = self.buckets[bucket].pop_front()?;
        self.states[entry.seq as usize] = STATE_GONE;
        self.live -= 1;
        // Popping shrinks the live count, so the dead ratio can cross the
        // compaction threshold here too, not just on cancel.
        self.maybe_compact();
        Some((entry.time, entry.event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let bucket = self.find_min_bucket()?;
        self.buckets[bucket].front().map(|e| e.time)
    }

    /// The number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The number of entries physically held by the backing store, including
    /// lazily-cancelled ones awaiting compaction.
    ///
    /// Always at least [`len`](Self::len); the compaction policy keeps the
    /// excess bounded by `len() / 2`. Exposed so external checkers can assert
    /// the queue does not grow without bound under heavy cancellation.
    pub fn heap_len(&self) -> usize {
        self.live + self.dead
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            for entry in bucket.drain(..) {
                self.states[entry.seq as usize] = STATE_GONE;
            }
        }
        self.live = 0;
        self.dead = 0;
        self.cursor_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3), 'c');
        q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(2), "alive");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "alive")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), ());
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(9), "alive");
        assert!(q.cancel(h));
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.pop(), Some((t(9), "alive")));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_after_clear_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), 1);
        q.clear();
        assert!(!q.cancel(h));
        assert_eq!(q.heap_len(), 0);
    }

    #[test]
    fn cancel_fired_handle_with_others_pending_is_rejected() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "fires");
        q.schedule(t(2), "still pending");
        assert_eq!(q.pop(), Some((t(1), "fires")));
        assert!(!q.cancel(h));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "still pending")));
    }

    #[test]
    fn heavy_cancellation_compacts_heap() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..1_000).map(|i| q.schedule(t(i), i)).collect();
        for h in &handles[..900] {
            assert!(q.cancel(*h));
        }
        assert_eq!(q.len(), 100);
        // Compaction keeps dead heap entries bounded by half the live count;
        // without it the store would still hold all 1 000 entries.
        assert!(
            q.heap_len() - q.len() <= q.len() / 2,
            "store holds {} entries for {} live events",
            q.heap_len(),
            q.len()
        );
        // Survivors still pop in (time, seq) order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (900..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn cancelling_everything_empties_the_heap() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..64).map(|i| q.schedule(t(i % 7), i)).collect();
        for h in handles {
            assert!(q.cancel(h));
        }
        assert!(q.is_empty());
        assert_eq!(q.heap_len(), 0, "cancelled entries must not linger");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn compaction_preserves_handle_semantics() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..10).map(|i| q.schedule(t(i), i)).collect();
        for h in &handles[..8] {
            assert!(q.cancel(*h));
        }
        // Cancelled handles stay dead after the compaction that just ran.
        for h in &handles[..8] {
            assert!(!q.cancel(*h));
        }
        // Live handles are still cancellable exactly once.
        assert!(q.cancel(handles[8]));
        assert!(!q.cancel(handles[8]));
        assert_eq!(q.pop(), Some((t(9), 9)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(10), 1);
        q.schedule(t(5), 2);
        assert_eq!(q.pop(), Some((t(5), 2)));
        q.schedule(t(8), 3);
        assert!(q.cancel(h1));
        q.schedule(t(12), 4);
        assert_eq!(q.pop(), Some((t(8), 3)));
        assert_eq!(q.pop(), Some((t(12), 4)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn scheduling_earlier_than_the_cursor_rewinds_it() {
        let mut q = EventQueue::new();
        q.schedule(t(500), "late");
        assert_eq!(q.pop(), Some((t(500), "late")));
        // The cursor now sits at t=500s; an earlier schedule must still
        // surface first.
        q.schedule(t(1), "early");
        q.schedule(t(700), "later");
        assert_eq!(q.pop(), Some((t(1), "early")));
        assert_eq!(q.pop(), Some((t(700), "later")));
    }

    #[test]
    fn colliding_slots_one_rotation_apart_stay_ordered() {
        // Two times whose slots differ by exactly BUCKETS land in the same
        // bucket; the earlier rotation must pop first and the cursor scan
        // must not mistake the later one for the current slot.
        let mut q = EventQueue::new();
        let width = 1u64 << SLOT_SHIFT;
        let far = SimTime::from_micros(BUCKETS as u64 * width + 5);
        let near = SimTime::from_micros(5);
        q.schedule(far, "far");
        q.schedule(near, "near");
        assert_eq!(q.pop(), Some((near, "near")));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn sparse_far_future_jump_finds_the_minimum() {
        // With nothing in the next BUCKETS slots the queue falls back to a
        // direct min-scan; the jump must preserve (time, seq) order.
        let mut q = EventQueue::new();
        let width = 1u64 << SLOT_SHIFT;
        let a = SimTime::from_micros(10 * BUCKETS as u64 * width + 3);
        let b = SimTime::from_micros(17 * BUCKETS as u64 * width + 9);
        q.schedule(b, "b");
        q.schedule(a, "a");
        assert_eq!(q.peek_time(), Some(a));
        assert_eq!(q.pop(), Some((a, "a")));
        assert_eq!(q.pop(), Some((b, "b")));
    }
}
