//! Intra-node thrashing protection (TPF).
//!
//! Ref \[6] of the paper — Jiang & Zhang, *"TPF: a system thrashing
//! protection facility in Linux"* — is cited as evidence that jobs with
//! large memory demands are less competitive under global page
//! replacement. TPF's remedy is *intra-node*: when a workstation starts
//! thrashing, temporarily protect one resident job (privilege its resident
//! set) so it can finish and release its memory, instead of letting every
//! job grind.
//!
//! [`ThrashingProtection`] reproduces that mechanism as a per-node policy:
//! under overflow, the chosen job's stall factor drops to zero and its
//! deficit is redistributed over the unprotected jobs. It composes with —
//! and is ablated against — the paper's *inter-node* virtual
//! reconfiguration, which removes the memory pressure instead of
//! reshuffling who pays for it.

use serde::{Deserialize, Serialize};

use crate::units::Bytes;

/// Which resident job a thrashing workstation protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ThrashingProtection {
    /// No protection: every job pays for the overflow in proportion to its
    /// demand (the paper's baseline behaviour).
    #[default]
    Off,
    /// Protect the job with the largest working set — TPF's heuristic: the
    /// big job is the one being starved by global replacement, and it
    /// holds the most memory hostage while it crawls.
    ProtectLargest,
    /// Protect the job with the least CPU work remaining — the SRPT-flavored
    /// variant: finish someone fast to release memory soonest.
    ProtectShortestRemaining,
}

impl ThrashingProtection {
    /// Picks the index of the protected job, given each resident job's
    /// working set and remaining CPU work (seconds). Returns `None` when
    /// protection is off or fewer than two jobs are resident (protecting a
    /// lone job is meaningless).
    pub fn protected_index(&self, working_sets: &[Bytes], remaining_secs: &[f64]) -> Option<usize> {
        debug_assert_eq!(working_sets.len(), remaining_secs.len());
        if working_sets.len() < 2 {
            return None;
        }
        match self {
            ThrashingProtection::Off => None,
            ThrashingProtection::ProtectLargest => working_sets
                .iter()
                .enumerate()
                .max_by_key(|(i, w)| (**w, std::cmp::Reverse(*i)))
                .map(|(i, _)| i),
            ThrashingProtection::ProtectShortestRemaining => remaining_secs
                .iter()
                .enumerate()
                // vr-lint::allow(panic-in-lib, reason = "comparator contract: remaining work is a finite simulated duration, never NaN")
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("remaining work is never NaN"))
                .map(|(i, _)| i),
        }
    }

    /// Applies protection to a vector of per-job stall factors: the
    /// protected job's stall is redistributed over the others in proportion
    /// to their existing stalls, conserving the node's total stall burden
    /// (the deficit pages still have to live somewhere).
    pub fn apply(&self, stalls: &mut [f64], working_sets: &[Bytes], remaining_secs: &[f64]) {
        let Some(protected) = self.protected_index(working_sets, remaining_secs) else {
            return;
        };
        let moved = std::mem::take(&mut stalls[protected]);
        // vr-lint::allow(float-eq, reason = "exact zero-guard: a taken stall of 0.0 means there is nothing to redistribute")
        if moved == 0.0 {
            return;
        }
        let rest: f64 = stalls.iter().sum();
        if rest > 0.0 {
            for (i, s) in stalls.iter_mut().enumerate() {
                if i != protected {
                    *s += moved * (*s / rest);
                }
            }
        } else {
            // Everyone else was clean: spread evenly.
            let n = (stalls.len() - 1) as f64;
            for (i, s) in stalls.iter_mut().enumerate() {
                if i != protected {
                    *s += moved / n;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(v: &[u64]) -> Vec<Bytes> {
        v.iter().map(|m| Bytes::from_mb(*m)).collect()
    }

    #[test]
    fn off_protects_nothing() {
        assert_eq!(
            ThrashingProtection::Off.protected_index(&mb(&[10, 90]), &[5.0, 9.0]),
            None
        );
    }

    #[test]
    fn largest_picks_biggest_working_set() {
        assert_eq!(
            ThrashingProtection::ProtectLargest
                .protected_index(&mb(&[10, 90, 40]), &[1.0, 2.0, 3.0]),
            Some(1)
        );
    }

    #[test]
    fn shortest_picks_least_remaining() {
        assert_eq!(
            ThrashingProtection::ProtectShortestRemaining
                .protected_index(&mb(&[10, 90, 40]), &[5.0, 9.0, 2.0]),
            Some(2)
        );
    }

    #[test]
    fn lone_job_is_never_protected() {
        assert_eq!(
            ThrashingProtection::ProtectLargest.protected_index(&mb(&[90]), &[5.0]),
            None
        );
    }

    #[test]
    fn apply_conserves_total_stall() {
        let ws = mb(&[30, 90, 60]);
        let remaining = [10.0, 50.0, 20.0];
        let mut stalls = vec![0.5, 1.5, 1.0];
        let before: f64 = stalls.iter().sum();
        ThrashingProtection::ProtectLargest.apply(&mut stalls, &ws, &remaining);
        assert_eq!(stalls[1], 0.0, "protected job stalls");
        let after: f64 = stalls.iter().sum();
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        // Redistribution is proportional: 0.5:1.0 ratio preserved.
        assert!((stalls[2] / stalls[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn apply_spreads_evenly_when_others_are_clean() {
        let ws = mb(&[90, 10, 10]);
        let remaining = [9.0, 1.0, 1.0];
        let mut stalls = vec![3.0, 0.0, 0.0];
        ThrashingProtection::ProtectLargest.apply(&mut stalls, &ws, &remaining);
        assert_eq!(stalls, vec![0.0, 1.5, 1.5]);
    }

    #[test]
    fn apply_with_protection_off_is_a_no_op() {
        let ws = mb(&[30, 90]);
        let mut stalls = vec![0.5, 1.5];
        ThrashingProtection::Off.apply(&mut stalls, &ws, &[1.0, 2.0]);
        assert_eq!(stalls, vec![0.5, 1.5]);
    }
}
